#ifndef AIB_COMMON_RESULT_H_
#define AIB_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace aib {

/// A value-or-Status holder (lightweight StatusOr). A `Result<T>` is either
/// a T or a non-OK Status; constructing one from `Status::Ok()` is a
/// programming error.
template <typename T>
class Result {
 public:
  /// Implicit from value — mirrors absl::StatusOr ergonomics.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() &&
           "Result<T> must not hold an OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Status of the result; OK when a value is present.
  Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(repr_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<Status, T> repr_;
};

/// Assigns the value of a `Result<T>` expression to `lhs` or propagates the
/// error status to the caller.
#define AIB_ASSIGN_OR_RETURN(lhs, expr)               \
  auto AIB_CONCAT_(_aib_result_, __LINE__) = (expr);  \
  if (!AIB_CONCAT_(_aib_result_, __LINE__).ok())      \
    return AIB_CONCAT_(_aib_result_, __LINE__).status(); \
  lhs = std::move(AIB_CONCAT_(_aib_result_, __LINE__)).value()

#define AIB_CONCAT_(a, b) AIB_CONCAT_IMPL_(a, b)
#define AIB_CONCAT_IMPL_(a, b) a##b

}  // namespace aib

#endif  // AIB_COMMON_RESULT_H_
