#ifndef AIB_COMMON_TYPES_H_
#define AIB_COMMON_TYPES_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace aib {

/// Identifier of a page within a heap file. Pages are numbered densely from
/// zero in allocation order.
using PageId = uint32_t;

/// Sentinel for "no page".
inline constexpr PageId kInvalidPageId = std::numeric_limits<PageId>::max();

/// Slot number of a tuple within a page.
using SlotId = uint16_t;

/// Sentinel for "no slot".
inline constexpr SlotId kInvalidSlotId = std::numeric_limits<SlotId>::max();

/// Identifier of a column within a schema.
using ColumnId = uint16_t;

/// Key type of all indexable columns in this library. The paper evaluates on
/// INTEGER columns; we fix the key domain to int32 and keep the payload
/// opaque.
using Value = int32_t;

/// Record identifier: physical address of a tuple.
struct Rid {
  PageId page_id = kInvalidPageId;
  SlotId slot = kInvalidSlotId;

  bool Valid() const { return page_id != kInvalidPageId; }

  friend bool operator==(const Rid&, const Rid&) = default;
  friend auto operator<=>(const Rid&, const Rid&) = default;
};

/// Human-readable "(page, slot)" form, used in log and test messages.
inline std::string RidToString(const Rid& rid) {
  return "(" + std::to_string(rid.page_id) + "," + std::to_string(rid.slot) +
         ")";
}

}  // namespace aib

namespace std {
template <>
struct hash<aib::Rid> {
  size_t operator()(const aib::Rid& rid) const noexcept {
    return (static_cast<size_t>(rid.page_id) << 16) ^ rid.slot;
  }
};
}  // namespace std

#endif  // AIB_COMMON_TYPES_H_
