#ifndef AIB_COMMON_ASCII_CHART_H_
#define AIB_COMMON_ASCII_CHART_H_

#include <cstddef>
#include <string>
#include <vector>

namespace aib {

/// Renders numeric series as fixed-size ASCII line charts, so the figure
/// benches can draw the paper's plots directly into the terminal next to
/// the tabulated values.
class AsciiChart {
 public:
  struct Options {
    /// Sentinel for "derive the bound from the data".
    static constexpr double kAuto = -1e308;

    /// Plot area width in columns (excluding the y-axis labels).
    size_t width = 72;
    /// Plot area height in rows.
    size_t height = 12;
    /// Log10 y-axis — right for cost series spanning orders of magnitude.
    bool log_y = false;
    /// Minimum y of the plot range; kAuto = derive from the data.
    double y_min = kAuto;
    /// Maximum y of the plot range; kAuto = derive from the data.
    double y_max = kAuto;
  };

  /// One-series chart using '*' marks.
  static std::string Render(const std::vector<double>& series,
                            Options options);
  static std::string Render(const std::vector<double>& series);

  /// Multi-series chart; series i uses `marks[i % marks.size()]`. Series
  /// may have different lengths; each is stretched over the full width.
  static std::string RenderMulti(
      const std::vector<std::vector<double>>& series,
      const std::string& marks, Options options);
  static std::string RenderMulti(
      const std::vector<std::vector<double>>& series,
      const std::string& marks = "*o+x");
};

}  // namespace aib

#endif  // AIB_COMMON_ASCII_CHART_H_
