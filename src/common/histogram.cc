#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/csv_writer.h"

namespace aib {

void Histogram::Add(double value) {
  samples_.push_back(value);
  sorted_valid_ = false;
}

void Histogram::EnsureSorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Histogram::Min() const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  return sorted_.front();
}

double Histogram::Max() const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  return sorted_.back();
}

double Histogram::Sum() const {
  double sum = 0;
  for (double v : samples_) sum += v;
  return sum;
}

double Histogram::Mean() const {
  return samples_.empty() ? 0 : Sum() / static_cast<double>(samples_.size());
}

double Histogram::Percentile(double q) const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  q = std::clamp(q, 0.0, 1.0);
  const double position = q * static_cast<double>(sorted_.size() - 1);
  const size_t lower = static_cast<size_t>(std::floor(position));
  const size_t upper = static_cast<size_t>(std::ceil(position));
  const double fraction = position - static_cast<double>(lower);
  return sorted_[lower] + (sorted_[upper] - sorted_[lower]) * fraction;
}

std::string Histogram::Summary() const {
  std::ostringstream out;
  out << "count=" << Count() << " mean=" << FormatDouble(Mean(), 2)
      << " p50=" << FormatDouble(Percentile(0.5), 2)
      << " p95=" << FormatDouble(Percentile(0.95), 2)
      << " max=" << FormatDouble(Max(), 2);
  return out.str();
}

void Histogram::MergeFrom(const Histogram& other) {
  if (other.samples_.empty()) return;
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_valid_ = false;
}

void Histogram::Clear() {
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = false;
}

}  // namespace aib
