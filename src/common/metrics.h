#ifndef AIB_COMMON_METRICS_H_
#define AIB_COMMON_METRICS_H_

#include <cstdint>
#include <map>
#include <string>

namespace aib {

/// Simple named-counter registry used by the storage engine and executor to
/// account simulated I/O and index work. Deliberately not thread-safe: the
/// engine is single-threaded by design (the paper's mechanism is evaluated
/// on a single query stream).
class Metrics {
 public:
  void Increment(const std::string& name, int64_t delta = 1) {
    counters_[name] += delta;
  }

  int64_t Get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  void Reset() { counters_.clear(); }

  const std::map<std::string, int64_t>& counters() const { return counters_; }

  /// One "name=value" pair per line, sorted by name.
  std::string ToString() const;

 private:
  std::map<std::string, int64_t> counters_;
};

// Well-known counter names, shared between storage, exec, and benches.
inline constexpr char kMetricPagesRead[] = "storage.pages_read";
inline constexpr char kMetricPagesWritten[] = "storage.pages_written";
inline constexpr char kMetricPagesSkipped[] = "exec.pages_skipped";
inline constexpr char kMetricBufferHits[] = "bufferpool.hits";
inline constexpr char kMetricBufferMisses[] = "bufferpool.misses";
inline constexpr char kMetricIndexProbes[] = "index.probes";
inline constexpr char kMetricIndexInserts[] = "index.inserts";
inline constexpr char kMetricIndexRemoves[] = "index.removes";
inline constexpr char kMetricIbEntriesAdded[] = "index_buffer.entries_added";
inline constexpr char kMetricIbEntriesDropped[] =
    "index_buffer.entries_dropped";
inline constexpr char kMetricIbPartitionsDropped[] =
    "index_buffer.partitions_dropped";

}  // namespace aib

#endif  // AIB_COMMON_METRICS_H_
