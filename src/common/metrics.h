#ifndef AIB_COMMON_METRICS_H_
#define AIB_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "common/histogram.h"

namespace aib {

/// Named-counter registry used by the storage engine, executor, and query
/// service to account simulated I/O and index work.
///
/// Thread-safe: counters live in hash-sharded maps (shard chosen by name
/// hash), each shard guarded by a reader-writer lock that is only taken
/// exclusively when a counter name is seen for the first time; the hot
/// Increment path is a shared-lock lookup plus one relaxed atomic add, so
/// worker threads touching different counters do not contend.
class Metrics {
 public:
  Metrics() = default;
  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  void Increment(const std::string& name, int64_t delta = 1) {
    FindOrCreate(name)->fetch_add(delta, std::memory_order_relaxed);
  }

  /// Stable handle to a counter for hot paths: resolve the name once, then
  /// bump the atomic directly (relaxed) with no map lookup per event.
  /// Handles stay valid for the lifetime of the Metrics object — values
  /// are heap-allocated and never move — EXCEPT across Reset(), which
  /// drops the counters a handle points into; re-resolve after Reset()
  /// (engine components never Reset a live registry; only tests do).
  std::atomic<int64_t>* Counter(const std::string& name) {
    return FindOrCreate(name);
  }

  int64_t Get(const std::string& name) const {
    const Shard& shard = ShardFor(name);
    std::shared_lock lock(shard.mu);
    auto it = shard.counters.find(name);
    return it == shard.counters.end()
               ? 0
               : it->second->load(std::memory_order_relaxed);
  }

  /// Records `value` into the named histogram (e.g. latch wait time in
  /// microseconds). Histograms are off the hot path by design — callers
  /// only Observe on already-slow events (a blocked latch acquisition), so
  /// one registry-wide mutex is fine.
  void Observe(const std::string& name, double value);

  /// Copy of the named histogram (empty if never observed).
  Histogram HistogramCopy(const std::string& name) const;

  /// Snapshot of all histograms, sorted by name.
  std::map<std::string, Histogram> histograms() const;

  /// Drops every counter and histogram (names included).
  void Reset() {
    for (Shard& shard : shards_) {
      std::unique_lock lock(shard.mu);
      shard.counters.clear();
    }
    std::lock_guard lock(histograms_mu_);
    histograms_.clear();
  }

  /// Merged snapshot of all shards, sorted by name. Counters incremented
  /// concurrently with the snapshot may or may not be reflected.
  std::map<std::string, int64_t> counters() const;

  /// Adds every counter of `other` into this registry (creating names as
  /// needed) and appends the samples of every histogram of `other` into
  /// the histogram of the same name. Used to roll per-shard registries up
  /// into fleet-wide totals. Snapshot semantics match counters():
  /// concurrent increments on `other` may or may not be included.
  void MergeFrom(const Metrics& other);

  /// One "name=value" pair per line, sorted by name (counters only;
  /// histograms are surfaced via HistogramCopy(...).Summary()).
  std::string ToString() const;

 private:
  static constexpr size_t kShards = 16;

  struct Shard {
    mutable std::shared_mutex mu;
    /// Values are heap-allocated so rehashing never moves a live atomic.
    std::unordered_map<std::string, std::unique_ptr<std::atomic<int64_t>>>
        counters;
  };

  const Shard& ShardFor(const std::string& name) const {
    return shards_[std::hash<std::string>{}(name) % kShards];
  }
  Shard& ShardFor(const std::string& name) {
    return shards_[std::hash<std::string>{}(name) % kShards];
  }

  std::atomic<int64_t>* FindOrCreate(const std::string& name);

  std::array<Shard, kShards> shards_;

  /// Histograms are only touched on slow events (blocked latch
  /// acquisitions, bench summaries), so a single mutex suffices.
  mutable std::mutex histograms_mu_;
  std::map<std::string, Histogram> histograms_;
};

// Well-known counter names, shared between storage, exec, service, and
// benches.
inline constexpr char kMetricPagesRead[] = "storage.pages_read";
inline constexpr char kMetricPagesWritten[] = "storage.pages_written";
inline constexpr char kMetricPagesSkipped[] = "exec.pages_skipped";
inline constexpr char kMetricBufferHits[] = "bufferpool.hits";
inline constexpr char kMetricBufferMisses[] = "bufferpool.misses";
inline constexpr char kMetricBufferPinWaits[] = "bufferpool.pin_waits";
inline constexpr char kMetricIndexProbes[] = "index.probes";
inline constexpr char kMetricIndexInserts[] = "index.inserts";
inline constexpr char kMetricIndexRemoves[] = "index.removes";
inline constexpr char kMetricIbEntriesAdded[] = "index_buffer.entries_added";
inline constexpr char kMetricIbEntriesDropped[] =
    "index_buffer.entries_dropped";
inline constexpr char kMetricIbPartitionsDropped[] =
    "index_buffer.partitions_dropped";
inline constexpr char kMetricServiceSubmitted[] = "service.queries_submitted";
inline constexpr char kMetricServiceRejected[] = "service.queries_rejected";
inline constexpr char kMetricServiceExecuted[] = "service.queries_executed";
inline constexpr char kMetricSharedScanAttaches[] = "sharedscan.attaches";
inline constexpr char kMetricSharedScanPagesShared[] =
    "sharedscan.pages_shared";
inline constexpr char kMetricFaultsInjected[] = "faults.injected";
inline constexpr char kMetricFaultLatencyTicks[] = "faults.latency_ticks";
inline constexpr char kMetricTransientRetries[] = "faults.transient_retries";
inline constexpr char kMetricQueriesTimedOut[] = "service.queries_timed_out";
inline constexpr char kMetricQueriesCancelled[] = "service.queries_cancelled";
inline constexpr char kMetricPartitionsQuarantined[] =
    "index_buffer.partitions_quarantined";
inline constexpr char kMetricDegradedQueries[] = "exec.degraded_queries";
inline constexpr char kMetricPrefetchHints[] = "storage.prefetch_hints";
inline constexpr char kMetricPrefetchedPages[] =
    "bufferpool.prefetched_pages";
inline constexpr char kMetricDmlStatements[] = "exec.dml_statements";
inline constexpr char kMetricServiceDmlExecuted[] = "service.dml_executed";
// Sharding layer (routing + scatter-gather; live in the router's own
// registry, rolled into FleetCounters()).
inline constexpr char kMetricShardStatementsRouted[] =
    "shard.statements_routed";
inline constexpr char kMetricShardScatterStatements[] =
    "shard.scatter_statements";
inline constexpr char kMetricShardLegsDispatched[] = "shard.legs_dispatched";
inline constexpr char kMetricShardLegsRetried[] = "shard.legs_retried";
inline constexpr char kMetricShardRowsMigrated[] = "shard.rows_migrated";
// Tenant admission (stride scheduler in front of the shard fleet).
inline constexpr char kMetricTenantSubmitted[] = "tenant.submitted";
inline constexpr char kMetricTenantRejected[] = "tenant.rejected";
inline constexpr char kMetricTenantDispatched[] = "tenant.dispatched";
// Partition-granular latching (common/partition_latch). Acquire counters
// count stripes/latches taken; `latch.waits` counts acquisitions that
// missed the try_lock fast path, with blocked time recorded in the
// `latch.wait_us` histogram. Optimistic counters track the version-
// validated probe path (see PartialIndexProbe).
inline constexpr char kMetricLatchSharedAcquires[] = "latch.shared_acquires";
inline constexpr char kMetricLatchExclusiveAcquires[] =
    "latch.exclusive_acquires";
inline constexpr char kMetricLatchWaits[] = "latch.waits";
inline constexpr char kMetricLatchOptimisticRetries[] =
    "latch.optimistic_retries";
inline constexpr char kMetricLatchOptimisticFallbacks[] =
    "latch.optimistic_fallbacks";
// Histogram name (Observe/HistogramCopy, not a counter).
inline constexpr char kMetricLatchWaitMicros[] = "latch.wait_us";
// Fleet fault tolerance (shard outage injection, per-shard circuit
// breakers, hedged scatter legs, warm restarts). Outage and breaker
// counters live in the router's registry, rolled into FleetCounters().
inline constexpr char kMetricShardOutagesArmed[] = "shard.outages_armed";
inline constexpr char kMetricShardCrashRejects[] = "shard.crash_rejects";
inline constexpr char kMetricShardHangWaits[] = "shard.hang_waits";
inline constexpr char kMetricShardBrownoutErrors[] = "shard.brownout_errors";
inline constexpr char kMetricShardBrownoutDelays[] = "shard.brownout_delays";
inline constexpr char kMetricShardBreakerOpened[] = "shard.breaker_opened";
inline constexpr char kMetricShardBreakerClosed[] = "shard.breaker_closed";
inline constexpr char kMetricShardBreakerProbes[] = "shard.breaker_probes";
inline constexpr char kMetricShardBreakerFastFails[] =
    "shard.breaker_fast_fails";
inline constexpr char kMetricShardLegsHedged[] = "shard.legs_hedged";
inline constexpr char kMetricShardHedgeWins[] = "shard.hedge_wins";
inline constexpr char kMetricShardLegsSkipped[] = "shard.legs_skipped";
inline constexpr char kMetricShardPartialGathers[] = "shard.partial_gathers";
inline constexpr char kMetricShardRestarts[] = "shard.restarts";
inline constexpr char kMetricTenantShed[] = "tenant.shed";
// Predictive buffer management (io_scheduler + segmented eviction).
// `storage.prefetch_dropped` counts hints the pool had no frame for — the
// gap the async scheduler closes by retrying high-relevance pages.
inline constexpr char kMetricPrefetchDropped[] = "storage.prefetch_dropped";
inline constexpr char kMetricBufferPromotions[] = "bufferpool.promotions";
inline constexpr char kMetricBufferDemotions[] = "bufferpool.demotions";
inline constexpr char kMetricIoSchedRequests[] = "io_sched.requests";
inline constexpr char kMetricIoSchedStaged[] = "io_sched.pages_staged";
inline constexpr char kMetricIoSchedDropped[] = "io_sched.requests_dropped";
inline constexpr char kMetricIoSchedRequeued[] = "io_sched.requests_requeued";
inline constexpr char kMetricIoSchedExpired[] = "io_sched.requests_expired";
inline constexpr char kMetricIoSchedCoalesced[] =
    "io_sched.requests_coalesced";
/// Pages delivered to scan consumers (the numerator of the page-reuse
/// ratio; the denominator is storage.pages_read).
inline constexpr char kMetricScanPagesServed[] = "exec.scan_pages_served";
// Histogram name: queue depth sampled at every scheduler enqueue.
inline constexpr char kMetricIoQueueDepth[] = "io_sched.queue_depth";

}  // namespace aib

#endif  // AIB_COMMON_METRICS_H_
