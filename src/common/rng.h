#ifndef AIB_COMMON_RNG_H_
#define AIB_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace aib {

/// Deterministic pseudo-random generator (xoshiro256**). Every source of
/// randomness in the library — workload generators, victim selection,
/// correlation shuffles — draws from a seeded Rng so experiments replay
/// bit-identically for a given seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli draw with probability `p` of true.
  bool Bernoulli(double p);

  /// Picks an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Requires at least one strictly positive weight.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t state_[4];
};

}  // namespace aib

#endif  // AIB_COMMON_RNG_H_
