#ifndef AIB_COMMON_CSV_WRITER_H_
#define AIB_COMMON_CSV_WRITER_H_

#include <fstream>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace aib {

/// Writes experiment series as CSV so figures can be regenerated from bench
/// output. Also exposes a fixed-width console table used by the bench
/// binaries to print the paper's rows directly.
class CsvWriter {
 public:
  /// Writes to `out` (caller keeps ownership; typically std::cout or an
  /// std::ofstream opened by the bench).
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  void WriteHeader(const std::vector<std::string>& columns);
  void WriteRow(const std::vector<std::string>& cells);

  /// Convenience: formats arithmetic cells with full precision.
  template <typename... Ts>
  void Row(const Ts&... cells) {
    WriteRow({Cell(cells)...});
  }

 private:
  template <typename T>
  static std::string Cell(const T& value) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(value);
    } else {
      return std::to_string(value);
    }
  }

  std::ostream* out_;
};

/// Fixed-width console table for bench summaries.
class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> columns);

  void AddRow(std::vector<std::string> cells);

  /// Renders header + rows with aligned columns to `out`.
  void Print(std::ostream& out) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` fractional digits (benches report ratios).
std::string FormatDouble(double value, int digits = 2);

}  // namespace aib

#endif  // AIB_COMMON_CSV_WRITER_H_
