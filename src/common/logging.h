#ifndef AIB_COMMON_LOGGING_H_
#define AIB_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace aib {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Process-wide minimum level; messages below it are discarded. Default is
/// kWarn so tests and benches stay quiet unless something is wrong.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

void Emit(LogLevel level, const char* file, int line, const std::string& msg);

/// Stream collector used by the AIB_LOG macro; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { Emit(level_, file_, line_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace aib

#define AIB_LOG(level)                                               \
  if (::aib::LogLevel::level < ::aib::GetLogLevel()) {               \
  } else                                                             \
    ::aib::internal_logging::LogMessage(::aib::LogLevel::level,      \
                                        __FILE__, __LINE__)          \
        .stream()

#endif  // AIB_COMMON_LOGGING_H_
