#ifndef AIB_COMMON_BACKOFF_H_
#define AIB_COMMON_BACKOFF_H_

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>

#include "common/rng.h"

namespace aib {

/// Seeded jittered exponential backoff, shared by every retry schedule in
/// the shard layer: Busy admission re-submits, circuit-breaker probe
/// delays, and leg re-dispatch all draw from the same policy shape so a
/// fleet under stress spreads its retries instead of thundering in step.
struct BackoffPolicy {
  /// Delay of attempt 0 before jitter.
  std::chrono::microseconds base{200};
  /// Exponential growth is clamped here.
  std::chrono::microseconds cap{50000};
  double multiplier = 2.0;
  /// Fraction of each step that is randomized: the delay for attempt k is
  /// step_k * (1 - jitter + jitter * u) with u ~ U[0, 1) from the caller's
  /// seeded Rng, so replays with the same seed sleep identically while
  /// distinct seeds decorrelate.
  double jitter = 0.5;
};

/// The jittered delay of retry `attempt` (0-based). Consumes exactly one
/// draw from `rng` per call, making the sleep sequence a pure function of
/// (policy, seed, attempt sequence).
inline std::chrono::microseconds JitteredBackoff(const BackoffPolicy& policy,
                                                 size_t attempt, Rng& rng) {
  const double u = rng.UniformDouble();
  double step = static_cast<double>(policy.base.count()) *
                std::pow(std::max(1.0, policy.multiplier),
                         static_cast<double>(attempt));
  step = std::min(step, static_cast<double>(policy.cap.count()));
  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  const double scaled = step * (1.0 - jitter + jitter * u);
  return std::chrono::microseconds(
      std::max<int64_t>(0, static_cast<int64_t>(std::llround(scaled))));
}

}  // namespace aib

#endif  // AIB_COMMON_BACKOFF_H_
