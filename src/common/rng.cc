#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace aib {

namespace {

// splitmix64, used only to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t draw;
  do {
    draw = Next();
  } while (draw >= limit);
  return lo + static_cast<int64_t>(draw % range);
}

double Rng::UniformDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) {
    assert(w >= 0);
    total += w;
  }
  assert(total > 0);
  double draw = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0) return i;
  }
  return weights.size() - 1;  // numeric edge: land on the last element
}

}  // namespace aib
