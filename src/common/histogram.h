#ifndef AIB_COMMON_HISTOGRAM_H_
#define AIB_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <string>
#include <vector>

namespace aib {

/// Streaming sample collector with exact percentile queries, used by the
/// benches to summarize per-query cost and latency distributions (mean
/// alone hides the cold-start spike the paper's figures show).
///
/// Samples are kept verbatim (the benches record a few hundred queries),
/// so percentiles are exact, not approximated.
class Histogram {
 public:
  void Add(double value);

  size_t Count() const { return samples_.size(); }
  double Min() const;
  double Max() const;
  double Mean() const;
  double Sum() const;

  /// Exact q-quantile (0 <= q <= 1) by linear interpolation between order
  /// statistics. Returns 0 for an empty histogram.
  double Percentile(double q) const;

  /// "count=… mean=… p50=… p95=… max=…" one-liner for bench output.
  std::string Summary() const;

  /// Appends every sample of `other`, for rolling per-shard latency /
  /// wait-time histograms up into fleet-wide distributions (exactness is
  /// preserved — the merged percentiles are those of the pooled samples).
  void MergeFrom(const Histogram& other);

  void Clear();

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace aib

#endif  // AIB_COMMON_HISTOGRAM_H_
