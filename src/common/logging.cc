#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace aib {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

void Emit(LogLevel level, const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s:%d: %s\n", LevelTag(level), Basename(file),
               line, msg.c_str());
}

}  // namespace internal_logging
}  // namespace aib
