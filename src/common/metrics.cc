#include "common/metrics.h"

#include <sstream>

namespace aib {

std::atomic<int64_t>* Metrics::FindOrCreate(const std::string& name) {
  Shard& shard = ShardFor(name);
  {
    std::shared_lock lock(shard.mu);
    if (auto it = shard.counters.find(name); it != shard.counters.end()) {
      return it->second.get();
    }
  }
  std::unique_lock lock(shard.mu);
  auto [it, inserted] = shard.counters.try_emplace(name);
  if (inserted) it->second = std::make_unique<std::atomic<int64_t>>(0);
  return it->second.get();
}

std::map<std::string, int64_t> Metrics::counters() const {
  std::map<std::string, int64_t> merged;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mu);
    for (const auto& [name, value] : shard.counters) {
      merged[name] = value->load(std::memory_order_relaxed);
    }
  }
  return merged;
}

void Metrics::Observe(const std::string& name, double value) {
  std::lock_guard lock(histograms_mu_);
  histograms_[name].Add(value);
}

Histogram Metrics::HistogramCopy(const std::string& name) const {
  std::lock_guard lock(histograms_mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? Histogram{} : it->second;
}

std::map<std::string, Histogram> Metrics::histograms() const {
  std::lock_guard lock(histograms_mu_);
  return histograms_;
}

void Metrics::MergeFrom(const Metrics& other) {
  for (const Shard& shard : other.shards_) {
    std::shared_lock lock(shard.mu);
    for (const auto& [name, value] : shard.counters) {
      const int64_t delta = value->load(std::memory_order_relaxed);
      if (delta != 0) Increment(name, delta);
    }
  }
  const std::map<std::string, Histogram> theirs = other.histograms();
  std::lock_guard lock(histograms_mu_);
  for (const auto& [name, histogram] : theirs) {
    histograms_[name].MergeFrom(histogram);
  }
}

std::string Metrics::ToString() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters()) {
    out << name << "=" << value << "\n";
  }
  return out.str();
}

}  // namespace aib
