#ifndef AIB_COMMON_QUERY_CONTROL_H_
#define AIB_COMMON_QUERY_CONTROL_H_

#include <atomic>
#include <chrono>
#include <memory>

#include "common/status.h"

namespace aib {

/// Shared flag used to cancel a query cooperatively. The submitter keeps one
/// reference and flips it; operators observe it between batches/pages.
using CancelToken = std::shared_ptr<std::atomic<bool>>;

inline CancelToken MakeCancelToken() {
  return std::make_shared<std::atomic<bool>>(false);
}

/// Per-query deadline + cancellation context, threaded from QueryService /
/// the shell down to plan operators and the indexing scan. Checked
/// cooperatively (per batch in `Next()`, per page inside the scan loop) so an
/// over-budget or abandoned query returns Timeout/Cancelled instead of
/// occupying a worker. Lives in common/ because both core and exec consume it
/// and core must not depend on exec.
struct QueryControl {
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  CancelToken cancel;

  static QueryControl WithDeadline(std::chrono::milliseconds budget) {
    QueryControl control;
    control.deadline = std::chrono::steady_clock::now() + budget;
    return control;
  }

  bool has_deadline() const {
    return deadline != std::chrono::steady_clock::time_point::max();
  }

  /// Ok while the query may keep running; Cancelled/Timeout once it must
  /// stop. Cancellation wins over an expired deadline: it expresses an
  /// explicit caller decision.
  Status Check() const {
    if (cancel && cancel->load(std::memory_order_relaxed)) {
      return Status::Cancelled("query cancelled");
    }
    if (has_deadline() && std::chrono::steady_clock::now() >= deadline) {
      return Status::Timeout("query deadline exceeded");
    }
    return Status::Ok();
  }
};

}  // namespace aib

#endif  // AIB_COMMON_QUERY_CONTROL_H_
