#ifndef AIB_BTREE_CSB_TREE_H_
#define AIB_BTREE_CSB_TREE_H_

#include <memory>
#include <vector>

#include "btree/index_structure.h"
#include "common/status.h"

namespace aib {

/// Cache-Sensitive B+-Tree (Rao & Ross, SIGMOD'00 — the paper's reference
/// [4] for a main-memory-optimized Index Buffer structure).
///
/// The CSB+ idea: all children of an internal node are stored contiguously
/// in one *node group*, so the parent keeps a single child pointer (here:
/// one owning pointer to the group vector) instead of fanout-many, roughly
/// doubling the number of keys per cache line during descent. Splitting a
/// node inserts its new sibling into the same group (a contiguous shift),
/// and splitting a full group splits the parent.
///
/// Like BTree, deletion is lazy (keys are removed from leaves without
/// structural rebalancing) and range scans visit keys in ascending order —
/// via recursive traversal rather than a leaf chain, since contiguous
/// groups relocate on writes and stable sibling pointers would dangle.
class CsbTree final : public IndexStructure {
 public:
  /// `fanout` is the maximum number of keys per node (>= 4).
  explicit CsbTree(int fanout = 64);
  ~CsbTree() override;

  CsbTree(const CsbTree&) = delete;
  CsbTree& operator=(const CsbTree&) = delete;

  void Insert(Value key, const Rid& rid) override;
  bool Remove(Value key, const Rid& rid) override;
  size_t RemoveKey(Value key) override;
  void Lookup(Value key, std::vector<Rid>* out) const override;
  void Scan(Value lo, Value hi,
            const std::function<void(Value, const Rid&)>& fn) const override;
  void ForEachEntry(
      const std::function<void(Value, const Rid&)>& fn) const override;
  size_t EntryCount() const override { return entry_count_; }
  size_t ApproxBytes() const override;
  void Clear() override;

  /// Number of distinct keys currently present.
  size_t KeyCount() const { return key_count_; }

  /// Height of the tree (1 = root is a leaf).
  int Height() const;

  /// Verifies ordering, group sizes, uniform leaf depth, and the entry/key
  /// counters.
  Status CheckInvariants() const;

 private:
  struct Node;

  Node* FindLeaf(Value key);
  const Node* FindLeaf(Value key) const;

  /// Splits the full node `group[index]`, inserting the new right sibling
  /// at `group[index + 1]` and the separator into `parent`.
  void SplitChild(Node* parent, size_t index);

  void InsertNonFull(Node* node, Value key, const Rid& rid);

  Status CheckNode(const Node* node, bool is_root, Value lo, bool has_lo,
                   Value hi, bool has_hi, int depth, int leaf_depth,
                   size_t* keys_seen, size_t* entries_seen) const;

  int fanout_;
  std::unique_ptr<Node> root_;
  size_t entry_count_ = 0;
  size_t key_count_ = 0;
  size_t node_count_ = 1;
};

}  // namespace aib

#endif  // AIB_BTREE_CSB_TREE_H_
