#ifndef AIB_BTREE_HASH_INDEX_H_
#define AIB_BTREE_HASH_INDEX_H_

#include <unordered_map>
#include <vector>

#include "btree/index_structure.h"

namespace aib {

/// Hash-table implementation of IndexStructure — the alternative the paper
/// explicitly allows for an Index Buffer (§III). Point operations are O(1);
/// Scan degrades to a filtered full iteration and visits keys in arbitrary
/// order. Used in the structure ablation bench.
class HashIndex final : public IndexStructure {
 public:
  HashIndex() = default;

  void Insert(Value key, const Rid& rid) override;
  void Reserve(size_t expected_entries) override;
  bool Remove(Value key, const Rid& rid) override;
  size_t RemoveKey(Value key) override;
  void Lookup(Value key, std::vector<Rid>* out) const override;
  void Scan(Value lo, Value hi,
            const std::function<void(Value, const Rid&)>& fn) const override;
  void ForEachEntry(
      const std::function<void(Value, const Rid&)>& fn) const override;
  size_t EntryCount() const override { return entry_count_; }
  size_t ApproxBytes() const override;
  void Clear() override;

 private:
  std::unordered_map<Value, std::vector<Rid>> map_;
  size_t entry_count_ = 0;
};

}  // namespace aib

#endif  // AIB_BTREE_HASH_INDEX_H_
