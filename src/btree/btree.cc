#include "btree/btree.h"

#include <algorithm>
#include <cassert>

namespace aib {

struct BTree::Node {
  explicit Node(bool leaf) : is_leaf(leaf) {}

  bool is_leaf;
  std::vector<Value> keys;
  /// Internal nodes: children.size() == keys.size() + 1. Child i holds keys
  /// < keys[i]; child i+1 holds keys >= keys[i].
  std::vector<std::unique_ptr<Node>> children;
  /// Leaves: postings[i] are the rids of keys[i]. Distinct keys only;
  /// duplicates extend the postings list.
  std::vector<std::vector<Rid>> postings;
  /// Leaf chain, ascending key order.
  Node* next = nullptr;
};

BTree::BTree(int fanout) : fanout_(fanout) {
  assert(fanout_ >= 4);
  root_ = std::make_unique<Node>(/*leaf=*/true);
}

BTree::~BTree() = default;

BTree::Node* BTree::FindLeaf(Value key) const {
  Node* node = root_.get();
  while (!node->is_leaf) {
    const size_t index =
        std::upper_bound(node->keys.begin(), node->keys.end(), key) -
        node->keys.begin();
    node = node->children[index].get();
  }
  return node;
}

void BTree::SplitChild(Node* parent, int index) {
  Node* child = parent->children[index].get();
  auto right = std::make_unique<Node>(child->is_leaf);
  Value separator;

  if (child->is_leaf) {
    const size_t mid = child->keys.size() / 2;
    separator = child->keys[mid];
    right->keys.assign(child->keys.begin() + mid, child->keys.end());
    right->postings.assign(
        std::make_move_iterator(child->postings.begin() + mid),
        std::make_move_iterator(child->postings.end()));
    child->keys.resize(mid);
    child->postings.resize(mid);
    right->next = child->next;
    child->next = right.get();
  } else {
    const size_t mid = child->keys.size() / 2;
    separator = child->keys[mid];
    right->keys.assign(child->keys.begin() + mid + 1, child->keys.end());
    right->children.assign(
        std::make_move_iterator(child->children.begin() + mid + 1),
        std::make_move_iterator(child->children.end()));
    child->keys.resize(mid);
    child->children.resize(mid + 1);
  }

  parent->keys.insert(parent->keys.begin() + index, separator);
  parent->children.insert(parent->children.begin() + index + 1,
                          std::move(right));
  ++node_count_;
}

void BTree::InsertNonFull(Node* node, Value key, const Rid& rid) {
  while (!node->is_leaf) {
    size_t index =
        std::upper_bound(node->keys.begin(), node->keys.end(), key) -
        node->keys.begin();
    if (node->children[index]->keys.size() >=
        static_cast<size_t>(fanout_)) {
      SplitChild(node, static_cast<int>(index));
      if (key >= node->keys[index]) ++index;
    }
    node = node->children[index].get();
  }

  auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
  const size_t pos = it - node->keys.begin();
  if (it != node->keys.end() && *it == key) {
    node->postings[pos].push_back(rid);
  } else {
    node->keys.insert(it, key);
    node->postings.insert(node->postings.begin() + pos,
                          std::vector<Rid>{rid});
    ++key_count_;
  }
  ++entry_count_;
}

void BTree::Insert(Value key, const Rid& rid) {
  if (root_->keys.size() >= static_cast<size_t>(fanout_)) {
    auto new_root = std::make_unique<Node>(/*leaf=*/false);
    new_root->children.push_back(std::move(root_));
    root_ = std::move(new_root);
    ++node_count_;
    SplitChild(root_.get(), 0);
  }
  InsertNonFull(root_.get(), key, rid);
}

bool BTree::Remove(Value key, const Rid& rid) {
  Node* leaf = FindLeaf(key);
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it == leaf->keys.end() || *it != key) return false;
  const size_t pos = it - leaf->keys.begin();
  std::vector<Rid>& postings = leaf->postings[pos];
  auto rid_it = std::find(postings.begin(), postings.end(), rid);
  if (rid_it == postings.end()) return false;
  postings.erase(rid_it);
  --entry_count_;
  if (postings.empty()) {
    leaf->keys.erase(it);
    leaf->postings.erase(leaf->postings.begin() + pos);
    --key_count_;
  }
  return true;
}

size_t BTree::RemoveKey(Value key) {
  Node* leaf = FindLeaf(key);
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it == leaf->keys.end() || *it != key) return 0;
  const size_t pos = it - leaf->keys.begin();
  const size_t removed = leaf->postings[pos].size();
  leaf->keys.erase(it);
  leaf->postings.erase(leaf->postings.begin() + pos);
  entry_count_ -= removed;
  --key_count_;
  return removed;
}

void BTree::Lookup(Value key, std::vector<Rid>* out) const {
  const Node* leaf = FindLeaf(key);
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it == leaf->keys.end() || *it != key) return;
  const size_t pos = it - leaf->keys.begin();
  out->insert(out->end(), leaf->postings[pos].begin(),
              leaf->postings[pos].end());
}

void BTree::Scan(Value lo, Value hi,
                 const std::function<void(Value, const Rid&)>& fn) const {
  const Node* leaf = FindLeaf(lo);
  while (leaf != nullptr) {
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      const Value key = leaf->keys[i];
      if (key < lo) continue;
      if (key > hi) return;
      for (const Rid& rid : leaf->postings[i]) fn(key, rid);
    }
    leaf = leaf->next;
  }
}

void BTree::ForEachEntry(
    const std::function<void(Value, const Rid&)>& fn) const {
  const Node* node = root_.get();
  while (!node->is_leaf) node = node->children[0].get();
  for (const Node* leaf = node; leaf != nullptr; leaf = leaf->next) {
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      for (const Rid& rid : leaf->postings[i]) fn(leaf->keys[i], rid);
    }
  }
}

size_t BTree::ApproxBytes() const {
  // Rough but monotone in contents: per-node fixed overhead, per-key slot,
  // per-entry rid. Good enough for byte budgets and the benches.
  return node_count_ * (sizeof(Node) + 32) +
         key_count_ * (sizeof(Value) + sizeof(std::vector<Rid>)) +
         entry_count_ * sizeof(Rid);
}

void BTree::Clear() {
  root_ = std::make_unique<Node>(/*leaf=*/true);
  entry_count_ = 0;
  key_count_ = 0;
  node_count_ = 1;
}

int BTree::Height() const {
  int height = 1;
  const Node* node = root_.get();
  while (!node->is_leaf) {
    node = node->children[0].get();
    ++height;
  }
  return height;
}

Status BTree::CheckNode(const Node* node, bool is_root, Value lo, bool has_lo,
                        Value hi, bool has_hi, int depth,
                        int leaf_depth) const {
  if (node->is_leaf) {
    if (depth != leaf_depth) return Status::Corruption("uneven leaf depth");
    if (node->keys.size() != node->postings.size()) {
      return Status::Corruption("leaf keys/postings size mismatch");
    }
  } else {
    if (node->children.size() != node->keys.size() + 1) {
      return Status::Corruption("internal children/keys size mismatch");
    }
    if (!is_root && node->keys.empty()) {
      return Status::Corruption("empty internal node");
    }
  }
  for (size_t i = 0; i < node->keys.size(); ++i) {
    if (i > 0 && node->keys[i - 1] >= node->keys[i]) {
      return Status::Corruption("keys out of order");
    }
    if (has_lo && node->keys[i] < lo) {
      return Status::Corruption("key below subtree lower bound");
    }
    if (has_hi && node->keys[i] >= hi) {
      return Status::Corruption("key above subtree upper bound");
    }
  }
  if (!node->is_leaf) {
    for (size_t i = 0; i < node->children.size(); ++i) {
      const bool child_has_lo = i > 0 || has_lo;
      const Value child_lo = i > 0 ? node->keys[i - 1] : lo;
      const bool child_has_hi = i < node->keys.size() || has_hi;
      const Value child_hi = i < node->keys.size() ? node->keys[i] : hi;
      AIB_RETURN_IF_ERROR(CheckNode(node->children[i].get(), false,
                                    child_lo, child_has_lo, child_hi,
                                    child_has_hi, depth + 1, leaf_depth));
    }
  }
  return Status::Ok();
}

Status BTree::CheckInvariants() const {
  int leaf_depth = 0;
  const Node* node = root_.get();
  while (!node->is_leaf) {
    node = node->children[0].get();
    ++leaf_depth;
  }
  AIB_RETURN_IF_ERROR(CheckNode(root_.get(), /*is_root=*/true, 0, false, 0,
                                false, 0, leaf_depth));

  // The leaf chain must visit every key exactly once, in ascending order.
  size_t keys_seen = 0;
  size_t entries_seen = 0;
  bool first = true;
  Value prev = 0;
  for (const Node* leaf = node; leaf != nullptr; leaf = leaf->next) {
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      if (!first && leaf->keys[i] <= prev) {
        return Status::Corruption("leaf chain out of order");
      }
      prev = leaf->keys[i];
      first = false;
      ++keys_seen;
      if (leaf->postings[i].empty()) {
        return Status::Corruption("key with empty postings");
      }
      entries_seen += leaf->postings[i].size();
    }
  }
  if (keys_seen != key_count_) {
    return Status::Corruption("key count drift");
  }
  if (entries_seen != entry_count_) {
    return Status::Corruption("entry count drift");
  }
  return Status::Ok();
}

}  // namespace aib
