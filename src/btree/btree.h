#ifndef AIB_BTREE_BTREE_H_
#define AIB_BTREE_BTREE_H_

#include <memory>
#include <vector>

#include "btree/index_structure.h"
#include "common/status.h"
#include "common/types.h"

namespace aib {

/// In-memory B+-tree from Value to Rid postings lists.
///
/// Structure: classic B+-tree with configurable fanout. Leaves hold
/// (key, postings) pairs and are singly linked for range scans. Inserts
/// split full nodes top-down; deletes remove keys from leaves without
/// structural rebalancing (the standard "lazy deletion" used by several
/// production B-trees): the tree stays correct but may carry sparse leaves
/// after heavy deletion. `CheckInvariants()` verifies ordering, linkage and
/// the entry count, and is exercised by the property tests.
class BTree final : public IndexStructure {
 public:
  /// `fanout` is the maximum number of keys per node (>= 4).
  explicit BTree(int fanout = 64);
  ~BTree() override;

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  void Insert(Value key, const Rid& rid) override;
  bool Remove(Value key, const Rid& rid) override;
  size_t RemoveKey(Value key) override;
  void Lookup(Value key, std::vector<Rid>* out) const override;
  void Scan(Value lo, Value hi,
            const std::function<void(Value, const Rid&)>& fn) const override;
  void ForEachEntry(
      const std::function<void(Value, const Rid&)>& fn) const override;
  size_t EntryCount() const override { return entry_count_; }
  size_t ApproxBytes() const override;
  void Clear() override;

  /// Number of distinct keys currently present.
  size_t KeyCount() const { return key_count_; }

  /// Height of the tree (1 = root is a leaf).
  int Height() const;

  /// Verifies B+-tree invariants: key ordering within and across nodes,
  /// child separator consistency, leaf chain completeness, and that the
  /// maintained entry/key counters match the actual contents.
  Status CheckInvariants() const;

 private:
  struct Node;

  /// Finds the leaf that should hold `key`.
  Node* FindLeaf(Value key) const;

  /// Splits `child` (the idx-th child of `parent`), both full.
  void SplitChild(Node* parent, int index);

  /// Inserts into the subtree at `node`, which is guaranteed non-full.
  void InsertNonFull(Node* node, Value key, const Rid& rid);

  Status CheckNode(const Node* node, bool is_root, Value lo, bool has_lo,
                   Value hi, bool has_hi, int depth, int leaf_depth) const;

  int fanout_;
  std::unique_ptr<Node> root_;
  size_t entry_count_ = 0;
  size_t key_count_ = 0;
  size_t node_count_ = 1;
};

}  // namespace aib

#endif  // AIB_BTREE_BTREE_H_
