#include "btree/csb_tree.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace aib {

struct CsbTree::Node {
  explicit Node(bool leaf) : is_leaf(leaf) {}

  bool is_leaf;
  std::vector<Value> keys;
  /// Internal nodes only: the contiguous child group. Child i of this node
  /// is (*children)[i]; group size == keys.size() + 1.
  std::unique_ptr<std::vector<Node>> children;
  /// Leaves only: postings[i] belongs to keys[i].
  std::vector<std::vector<Rid>> postings;
};

CsbTree::CsbTree(int fanout) : fanout_(fanout) {
  assert(fanout_ >= 4);
  root_ = std::make_unique<Node>(/*leaf=*/true);
}

CsbTree::~CsbTree() = default;

namespace {

/// Child index for `key` under the same routing convention as BTree:
/// keys >= separator go right.
size_t RouteIndex(const std::vector<Value>& keys, Value key) {
  return static_cast<size_t>(
      std::upper_bound(keys.begin(), keys.end(), key) - keys.begin());
}

}  // namespace

CsbTree::Node* CsbTree::FindLeaf(Value key) {
  Node* node = root_.get();
  while (!node->is_leaf) {
    node = &(*node->children)[RouteIndex(node->keys, key)];
  }
  return node;
}

const CsbTree::Node* CsbTree::FindLeaf(Value key) const {
  const Node* node = root_.get();
  while (!node->is_leaf) {
    node = &(*node->children)[RouteIndex(node->keys, key)];
  }
  return node;
}

void CsbTree::SplitChild(Node* parent, size_t index) {
  std::vector<Node>& group = *parent->children;
  Node& child = group[index];
  Node right(child.is_leaf);
  Value separator;

  if (child.is_leaf) {
    const size_t mid = child.keys.size() / 2;
    separator = child.keys[mid];
    right.keys.assign(child.keys.begin() + mid, child.keys.end());
    right.postings.assign(std::make_move_iterator(child.postings.begin() + mid),
                          std::make_move_iterator(child.postings.end()));
    child.keys.resize(mid);
    child.postings.resize(mid);
  } else {
    const size_t mid = child.keys.size() / 2;
    separator = child.keys[mid];
    right.keys.assign(child.keys.begin() + mid + 1, child.keys.end());
    right.children = std::make_unique<std::vector<Node>>();
    right.children->reserve(child.children->size() - (mid + 1));
    for (size_t i = mid + 1; i < child.children->size(); ++i) {
      right.children->push_back(std::move((*child.children)[i]));
    }
    child.keys.resize(mid);
    child.children->erase(
        child.children->begin() + static_cast<ptrdiff_t>(mid) + 1,
        child.children->end());
  }

  // CSB+ group insert: the new sibling slides into the contiguous group
  // right after the split node.
  parent->keys.insert(parent->keys.begin() + static_cast<ptrdiff_t>(index),
                      separator);
  group.insert(group.begin() + static_cast<ptrdiff_t>(index) + 1,
               std::move(right));
  ++node_count_;
}

void CsbTree::InsertNonFull(Node* node, Value key, const Rid& rid) {
  while (!node->is_leaf) {
    size_t index = RouteIndex(node->keys, key);
    if ((*node->children)[index].keys.size() >=
        static_cast<size_t>(fanout_)) {
      SplitChild(node, index);
      if (key >= node->keys[index]) ++index;
    }
    node = &(*node->children)[index];
  }

  auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
  const size_t pos = static_cast<size_t>(it - node->keys.begin());
  if (it != node->keys.end() && *it == key) {
    node->postings[pos].push_back(rid);
  } else {
    node->keys.insert(it, key);
    node->postings.insert(node->postings.begin() + static_cast<ptrdiff_t>(pos),
                          std::vector<Rid>{rid});
    ++key_count_;
  }
  ++entry_count_;
}

void CsbTree::Insert(Value key, const Rid& rid) {
  if (root_->keys.size() >= static_cast<size_t>(fanout_)) {
    auto new_root = std::make_unique<Node>(/*leaf=*/false);
    new_root->children = std::make_unique<std::vector<Node>>();
    new_root->children->push_back(std::move(*root_));
    root_ = std::move(new_root);
    ++node_count_;
    SplitChild(root_.get(), 0);
  }
  InsertNonFull(root_.get(), key, rid);
}

bool CsbTree::Remove(Value key, const Rid& rid) {
  Node* leaf = FindLeaf(key);
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it == leaf->keys.end() || *it != key) return false;
  const size_t pos = static_cast<size_t>(it - leaf->keys.begin());
  std::vector<Rid>& postings = leaf->postings[pos];
  auto rid_it = std::find(postings.begin(), postings.end(), rid);
  if (rid_it == postings.end()) return false;
  postings.erase(rid_it);
  --entry_count_;
  if (postings.empty()) {
    leaf->keys.erase(it);
    leaf->postings.erase(leaf->postings.begin() + static_cast<ptrdiff_t>(pos));
    --key_count_;
  }
  return true;
}

size_t CsbTree::RemoveKey(Value key) {
  Node* leaf = FindLeaf(key);
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it == leaf->keys.end() || *it != key) return 0;
  const size_t pos = static_cast<size_t>(it - leaf->keys.begin());
  const size_t removed = leaf->postings[pos].size();
  leaf->keys.erase(it);
  leaf->postings.erase(leaf->postings.begin() + static_cast<ptrdiff_t>(pos));
  entry_count_ -= removed;
  --key_count_;
  return removed;
}

void CsbTree::Lookup(Value key, std::vector<Rid>* out) const {
  const Node* leaf = FindLeaf(key);
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it == leaf->keys.end() || *it != key) return;
  const size_t pos = static_cast<size_t>(it - leaf->keys.begin());
  out->insert(out->end(), leaf->postings[pos].begin(),
              leaf->postings[pos].end());
}

void CsbTree::Scan(Value lo, Value hi,
                   const std::function<void(Value, const Rid&)>& fn) const {
  // Iterative in-order traversal restricted to [lo, hi]. Child i of an
  // internal node holds keys in [keys[i-1], keys[i]) (open ends at the
  // group's edges), so subtrees with keys[i] <= lo or keys[i-1] > hi are
  // pruned.
  struct Frame {
    const Node* node;
    size_t child;
  };
  std::vector<Frame> stack;
  stack.push_back({root_.get(), 0});
  while (!stack.empty()) {
    const Node* node = stack.back().node;
    if (node->is_leaf) {
      for (size_t i = 0; i < node->keys.size(); ++i) {
        const Value key = node->keys[i];
        if (key < lo) continue;
        if (key > hi) return;  // globally ascending: nothing more matches
        for (const Rid& rid : node->postings[i]) fn(key, rid);
      }
      stack.pop_back();
      continue;
    }
    const size_t child = stack.back().child;
    if (child >= node->children->size()) {
      stack.pop_back();
      continue;
    }
    stack.back().child = child + 1;
    if (child < node->keys.size() && node->keys[child] <= lo) {
      continue;  // whole subtree < lo (keys are strictly below keys[child])
    }
    if (child > 0 && node->keys[child - 1] > hi) {
      stack.pop_back();  // this and all later children are > hi
      continue;
    }
    stack.push_back({&(*node->children)[child], 0});
  }
}

void CsbTree::ForEachEntry(
    const std::function<void(Value, const Rid&)>& fn) const {
  Scan(std::numeric_limits<Value>::min(), std::numeric_limits<Value>::max(),
       fn);
}

size_t CsbTree::ApproxBytes() const {
  return node_count_ * (sizeof(Node) + 16) +
         key_count_ * (sizeof(Value) + sizeof(std::vector<Rid>)) +
         entry_count_ * sizeof(Rid);
}

void CsbTree::Clear() {
  root_ = std::make_unique<Node>(/*leaf=*/true);
  entry_count_ = 0;
  key_count_ = 0;
  node_count_ = 1;
}

int CsbTree::Height() const {
  int height = 1;
  const Node* node = root_.get();
  while (!node->is_leaf) {
    node = &(*node->children)[0];
    ++height;
  }
  return height;
}

Status CsbTree::CheckNode(const Node* node, bool is_root, Value lo,
                          bool has_lo, Value hi, bool has_hi, int depth,
                          int leaf_depth, size_t* keys_seen,
                          size_t* entries_seen) const {
  if (node->is_leaf) {
    if (depth != leaf_depth) return Status::Corruption("uneven leaf depth");
    if (node->keys.size() != node->postings.size()) {
      return Status::Corruption("leaf keys/postings size mismatch");
    }
  } else {
    if (node->children == nullptr ||
        node->children->size() != node->keys.size() + 1) {
      return Status::Corruption("group size != keys + 1");
    }
    if (!is_root && node->keys.empty()) {
      return Status::Corruption("empty internal node");
    }
  }
  for (size_t i = 0; i < node->keys.size(); ++i) {
    if (i > 0 && node->keys[i - 1] >= node->keys[i]) {
      return Status::Corruption("keys out of order");
    }
    if (has_lo && node->keys[i] < lo) {
      return Status::Corruption("key below subtree lower bound");
    }
    if (has_hi && node->keys[i] >= hi) {
      return Status::Corruption("key above subtree upper bound");
    }
  }
  if (node->is_leaf) {
    *keys_seen += node->keys.size();
    for (const auto& postings : node->postings) {
      if (postings.empty()) {
        return Status::Corruption("key with empty postings");
      }
      *entries_seen += postings.size();
    }
    return Status::Ok();
  }
  for (size_t i = 0; i < node->children->size(); ++i) {
    const bool child_has_lo = i > 0 || has_lo;
    const Value child_lo = i > 0 ? node->keys[i - 1] : lo;
    const bool child_has_hi = i < node->keys.size() || has_hi;
    const Value child_hi = i < node->keys.size() ? node->keys[i] : hi;
    AIB_RETURN_IF_ERROR(CheckNode(&(*node->children)[i], false, child_lo,
                                  child_has_lo, child_hi, child_has_hi,
                                  depth + 1, leaf_depth, keys_seen,
                                  entries_seen));
  }
  return Status::Ok();
}

Status CsbTree::CheckInvariants() const {
  int leaf_depth = 0;
  const Node* node = root_.get();
  while (!node->is_leaf) {
    node = &(*node->children)[0];
    ++leaf_depth;
  }
  size_t keys_seen = 0;
  size_t entries_seen = 0;
  AIB_RETURN_IF_ERROR(CheckNode(root_.get(), /*is_root=*/true, 0, false, 0,
                                false, 0, leaf_depth, &keys_seen,
                                &entries_seen));
  if (keys_seen != key_count_) return Status::Corruption("key count drift");
  if (entries_seen != entry_count_) {
    return Status::Corruption("entry count drift");
  }
  return Status::Ok();
}

}  // namespace aib
