#include "btree/hash_index.h"

#include <algorithm>

#include "btree/btree.h"
#include "btree/csb_tree.h"

namespace aib {

void HashIndex::Insert(Value key, const Rid& rid) {
  map_[key].push_back(rid);
  ++entry_count_;
}

void HashIndex::Reserve(size_t expected_entries) {
  // Upper bound: at most one bucket per entry. Avoids the rehash cascade
  // during the bulk inserts of an indexing scan leg.
  map_.reserve(map_.size() + expected_entries);
}

bool HashIndex::Remove(Value key, const Rid& rid) {
  auto it = map_.find(key);
  if (it == map_.end()) return false;
  auto& postings = it->second;
  auto rid_it = std::find(postings.begin(), postings.end(), rid);
  if (rid_it == postings.end()) return false;
  postings.erase(rid_it);
  --entry_count_;
  if (postings.empty()) map_.erase(it);
  return true;
}

size_t HashIndex::RemoveKey(Value key) {
  auto it = map_.find(key);
  if (it == map_.end()) return 0;
  const size_t removed = it->second.size();
  map_.erase(it);
  entry_count_ -= removed;
  return removed;
}

void HashIndex::Lookup(Value key, std::vector<Rid>* out) const {
  auto it = map_.find(key);
  if (it == map_.end()) return;
  out->insert(out->end(), it->second.begin(), it->second.end());
}

void HashIndex::Scan(Value lo, Value hi,
                     const std::function<void(Value, const Rid&)>& fn) const {
  for (const auto& [key, postings] : map_) {
    if (key < lo || key > hi) continue;
    for (const Rid& rid : postings) fn(key, rid);
  }
}

void HashIndex::ForEachEntry(
    const std::function<void(Value, const Rid&)>& fn) const {
  for (const auto& [key, postings] : map_) {
    for (const Rid& rid : postings) fn(key, rid);
  }
}

size_t HashIndex::ApproxBytes() const {
  return map_.size() * (sizeof(Value) + sizeof(std::vector<Rid>) + 32) +
         entry_count_ * sizeof(Rid);
}

void HashIndex::Clear() {
  map_.clear();
  entry_count_ = 0;
}

std::unique_ptr<IndexStructure> CreateIndexStructure(IndexStructureKind kind) {
  switch (kind) {
    case IndexStructureKind::kBTree:
      return std::make_unique<BTree>();
    case IndexStructureKind::kHash:
      return std::make_unique<HashIndex>();
    case IndexStructureKind::kCsbTree:
      return std::make_unique<CsbTree>();
  }
  return nullptr;
}

}  // namespace aib
