#ifndef AIB_BTREE_INDEX_STRUCTURE_H_
#define AIB_BTREE_INDEX_STRUCTURE_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/types.h"

namespace aib {

/// Abstract key → Rid-postings index. The paper notes that "which particular
/// index structure is used is not essential for the general idea of the
/// Index Buffer" (§III) — a B*-tree, CSB+-tree, or hash table all work.
/// PartialIndex and IndexBuffer are written against this interface, and the
/// structure ablation bench swaps implementations.
class IndexStructure {
 public:
  virtual ~IndexStructure() = default;

  /// Adds an entry. Duplicate (key, rid) pairs are allowed and stored; the
  /// callers of this library never insert duplicates.
  virtual void Insert(Value key, const Rid& rid) = 0;

  /// Hints that about `expected_entries` inserts are coming so the
  /// structure can size itself up front (an indexing scan knows the exact
  /// count from the C[p] counters before it starts staging entries).
  /// Purely advisory — the default does nothing, which is right for the
  /// node-at-a-time trees.
  virtual void Reserve(size_t expected_entries) { (void)expected_entries; }

  /// Removes one (key, rid) entry. Returns false if absent.
  virtual bool Remove(Value key, const Rid& rid) = 0;

  /// Removes all entries with `key`; returns how many were removed.
  virtual size_t RemoveKey(Value key) = 0;

  /// Appends all rids with `key` to `out`.
  virtual void Lookup(Value key, std::vector<Rid>* out) const = 0;

  /// Invokes `fn` for every entry with key in [lo, hi]. Ordered structures
  /// visit keys in ascending order; hash structures in arbitrary order.
  virtual void Scan(Value lo, Value hi,
                    const std::function<void(Value, const Rid&)>& fn)
      const = 0;

  /// Invokes `fn` for every entry.
  virtual void ForEachEntry(
      const std::function<void(Value, const Rid&)>& fn) const = 0;

  /// Total number of (key, rid) entries. The Index Buffer Space budget of
  /// the paper is expressed in entries.
  virtual size_t EntryCount() const = 0;

  /// Approximate heap footprint in bytes, for byte-based budgets.
  virtual size_t ApproxBytes() const = 0;

  virtual void Clear() = 0;
};

enum class IndexStructureKind {
  kBTree,
  kHash,
  /// Cache-sensitive B+-tree (§III's main-memory-optimized option).
  kCsbTree,
};

/// Creates an empty structure of the given kind with default parameters.
std::unique_ptr<IndexStructure> CreateIndexStructure(IndexStructureKind kind);

}  // namespace aib

#endif  // AIB_BTREE_INDEX_STRUCTURE_H_
