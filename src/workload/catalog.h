#ifndef AIB_WORKLOAD_CATALOG_H_
#define AIB_WORKLOAD_CATALOG_H_

#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "core/buffer_space.h"
#include "core/maintenance.h"
#include "exec/executor.h"
#include "index/index_tuner.h"
#include "index/partial_index.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/io_scheduler.h"
#include "storage/table.h"

namespace aib {

struct CatalogOptions {
  uint32_t page_size = kDefaultPageSize;
  /// Frames in the page buffer pool shared by all tables.
  size_t buffer_pool_pages = 1 << 16;
  /// See HeapFileOptions; applies to every table created in this catalog.
  uint16_t max_tuples_per_page = 0;
  /// One Index Buffer Space shared by every partial index of every table —
  /// "it is insignificant for the separation of Index Buffers whether the
  /// columns are in the same table or not" (§IV).
  BufferSpaceOptions space;
  /// Default options for lazily created Index Buffers.
  IndexBufferOptions buffer;
  bool enable_index_buffer = true;
  CostModelOptions cost;
  /// Replacement policy of the shared buffer pool (segmented = scan-
  /// resistant; see storage/buffer_pool.h).
  EvictionPolicy eviction_policy = EvictionPolicy::kSegmented;
  /// Stand up the async prefetch pipeline (storage/io_scheduler.h) and
  /// wire it into every table's executor. Off by default — it spawns
  /// `io.workers` background staging threads per catalog, which services
  /// and benches opt into explicitly.
  bool enable_io_scheduler = false;
  IoSchedulerOptions io;
};

/// A multi-table catalog: all tables share one disk, one page buffer pool,
/// one metrics registry, and — crucially — one Index Buffer Space, so
/// buffers of partial indexes on different tables compete for the same
/// entry budget under the §IV benefit model.
///
/// `Database` (database.h) is the single-table convenience facade over a
/// private Catalog.
class Catalog {
 public:
  explicit Catalog(CatalogOptions options = {});

  const CatalogOptions& options() const { return options_; }
  Metrics& metrics() { return metrics_; }
  IndexBufferSpace* space() { return space_.get(); }
  BufferPool& buffer_pool() { return *pool_; }
  /// The async prefetch pipeline; null unless enable_io_scheduler.
  IoScheduler* io_scheduler() { return io_sched_.get(); }
  /// The shared disk manager — exposed so tools/tests can arm its
  /// FaultInjector (chaos mode).
  DiskManager& disk() { return *disk_; }

  /// Creates an empty table. AlreadyExists if the name is taken.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// Null if no table has that name.
  Table* GetTable(const std::string& name) const;

  /// Names of all tables, in creation order.
  std::vector<std::string> TableNames() const;

  // --- DML (thin wrappers over the statement pipeline) ----------------------
  //
  // Each call delegates to the table executor's ExecuteStatement, so the
  // facade and a QueryService standing over the same table share exactly
  // one maintenance code path (the write operators of
  // exec/dml_operators.h, which apply the full Table I matrix under the
  // statement and space latches).

  Result<Rid> Insert(Table* table, const Tuple& tuple);
  Status Delete(Table* table, const Rid& rid);
  Result<Rid> Update(Table* table, const Rid& rid, const Tuple& tuple);

  /// Insert without maintenance — initial loading before index creation.
  Result<Rid> LoadTuple(Table* table, const Tuple& tuple) {
    return table->Insert(tuple);
  }

  // --- Indexing -------------------------------------------------------------

  Status CreatePartialIndex(Table* table, ColumnId column,
                            ValueCoverage coverage,
                            IndexStructureKind structure =
                                IndexStructureKind::kBTree);
  PartialIndex* GetIndex(const Table* table, ColumnId column) const;
  IndexBuffer* GetBuffer(const Table* table, ColumnId column) const;

  Status AttachTuner(Table* table, ColumnId column,
                     IndexTunerOptions options);
  IndexTuner* GetTuner(const Table* table, ColumnId column) const;

  /// The executor of `table` (null for unknown tables). Exposed so a
  /// QueryService can be stood up over a catalog-managed table; see
  /// Executor's thread-safety contract for what concurrent use permits.
  Executor* executor(const Table* table) const;

  // --- Queries --------------------------------------------------------------

  /// Executes with access-path selection on `table`; steps the column's
  /// tuner if one is attached (point queries only). `control` (optional)
  /// carries a deadline/cancellation token checked cooperatively during
  /// execution.
  Result<QueryResult> Execute(Table* table, const Query& query,
                              const QueryControl* control = nullptr);

  Result<QueryResult> FullScan(Table* table, const Query& query);
  Result<QueryResult> IndexScan(Table* table, const Query& query);

  /// Rids of all tuples with `value` in `column` of `table` (full scan).
  std::vector<Rid> FindRids(const Table* table, ColumnId column,
                            Value value) const;

  // --- Snapshots (workload/snapshot.cc) -------------------------------------
  //
  // A snapshot persists the durable state only: raw pages, table/schema
  // metadata, and partial-index definitions. Index Buffers are *not*
  // persisted — they are "memory-based and without expenses for crash
  // recovery" (§VII); after LoadSnapshot they start empty with freshly
  // initialized page counters and rebuild from the workload. Tuner state
  // is likewise ephemeral.

  /// Writes the catalog's durable state to `path`. Flushes the buffer
  /// pool first.
  Status SaveSnapshot(const std::string& path);

  /// Stream variant of SaveSnapshot — what warm shard restarts use: the
  /// snapshot round-trips through an in-memory stream, no filesystem
  /// involved.
  Status SaveSnapshotTo(std::ostream& out);

  /// Reconstructs a catalog from `path` under the given runtime options
  /// (budgets/costs are runtime configuration, not durable state).
  static Result<std::unique_ptr<Catalog>> LoadSnapshot(
      const std::string& path, CatalogOptions options);

  /// Stream variant of LoadSnapshot.
  static Result<std::unique_ptr<Catalog>> LoadSnapshotFrom(
      std::istream& in, CatalogOptions options);

 private:
  struct TableState {
    std::unique_ptr<Table> table;
    std::unique_ptr<Executor> executor;
    std::map<ColumnId, std::unique_ptr<PartialIndex>> indexes;
    std::map<ColumnId, std::unique_ptr<IndexTuner>> tuners;
  };

  TableState* StateOf(const Table* table) const;

  CatalogOptions options_;
  Metrics metrics_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  /// Declared after pool_ so its workers stop before the pool dies.
  std::unique_ptr<IoScheduler> io_sched_;
  std::unique_ptr<IndexBufferSpace> space_;
  /// Keyed by table name; pointers handed out remain stable.
  std::vector<std::pair<std::string, std::unique_ptr<TableState>>> tables_;
};

}  // namespace aib

#endif  // AIB_WORKLOAD_CATALOG_H_
