#include "workload/zipf.h"

#include <cassert>
#include <cmath>

namespace aib {

namespace {

double Zeta(size_t n, double theta) {
  double sum = 0;
  for (size_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

ZipfGenerator::ZipfGenerator(size_t n, double theta)
    : n_(n), theta_(theta) {
  assert(n_ >= 1);
  assert(theta_ >= 0 && theta_ < 1);
  zetan_ = Zeta(n_, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  const double zeta2 = Zeta(2, theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
  threshold2_ = 1.0 + std::pow(0.5, theta_);
}

size_t ZipfGenerator::Sample(Rng& rng) const {
  if (n_ == 1) return 1;
  const double u = rng.UniformDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 1;
  if (uz < threshold2_) return 2;
  const size_t rank =
      1 + static_cast<size_t>(static_cast<double>(n_) *
                              std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank > n_ ? n_ : rank;
}

}  // namespace aib
