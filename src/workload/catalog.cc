#include "workload/catalog.h"

#include <mutex>
#include <shared_mutex>

#include "exec/statement.h"

namespace aib {

Catalog::Catalog(CatalogOptions options) : options_(options) {
  disk_ = std::make_unique<DiskManager>(options_.page_size, &metrics_);
  BufferPoolOptions pool_options;
  pool_options.policy = options_.eviction_policy;
  pool_ = std::make_unique<BufferPool>(disk_.get(),
                                       options_.buffer_pool_pages, &metrics_,
                                       pool_options);
  if (options_.enable_io_scheduler) {
    io_sched_ = std::make_unique<IoScheduler>(pool_.get(), &metrics_,
                                              options_.io);
  }
  if (options_.enable_index_buffer) {
    space_ = std::make_unique<IndexBufferSpace>(options_.space, &metrics_);
  }
}

Result<Table*> Catalog::CreateTable(const std::string& name, Schema schema) {
  if (GetTable(name) != nullptr) {
    return Status::AlreadyExists("table " + name + " exists");
  }
  auto state = std::make_unique<TableState>();
  HeapFileOptions heap_options;
  heap_options.max_tuples_per_page = options_.max_tuples_per_page;
  state->table = std::make_unique<Table>(name, std::move(schema), disk_.get(),
                                         pool_.get(), heap_options, &metrics_);
  state->executor = std::make_unique<Executor>(
      state->table.get(), space_.get(), options_.cost, &metrics_);
  state->executor->SetBufferOptions(options_.buffer);
  state->executor->SetWriteTable(state->table.get());
  state->executor->SetIoScheduler(io_sched_.get());
  Table* raw = state->table.get();
  tables_.emplace_back(name, std::move(state));
  return raw;
}

Table* Catalog::GetTable(const std::string& name) const {
  for (const auto& [table_name, state] : tables_) {
    if (table_name == name) return state->table.get();
  }
  return nullptr;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, state] : tables_) names.push_back(name);
  return names;
}

Catalog::TableState* Catalog::StateOf(const Table* table) const {
  for (const auto& [name, state] : tables_) {
    if (state->table.get() == table) return state.get();
  }
  return nullptr;
}

Executor* Catalog::executor(const Table* table) const {
  TableState* state = StateOf(table);
  return state == nullptr ? nullptr : state->executor.get();
}

// The DML facade methods are thin wrappers over the statement pipeline:
// planning, latching, heap mutation, and the Table I maintenance matrix all
// live in the write operators (exec/dml_operators.h), so the facade and the
// QueryService share exactly one maintenance code path.

Result<Rid> Catalog::Insert(Table* table, const Tuple& tuple) {
  TableState* state = StateOf(table);
  if (state == nullptr) return Status::InvalidArgument("unknown table");
  AIB_ASSIGN_OR_RETURN(
      StatementResult result,
      state->executor->ExecuteStatement(Statement::Insert(tuple)));
  return result.rids.front();
}

Status Catalog::Delete(Table* table, const Rid& rid) {
  TableState* state = StateOf(table);
  if (state == nullptr) return Status::InvalidArgument("unknown table");
  return state->executor->ExecuteStatement(Statement::Delete(rid)).status();
}

Result<Rid> Catalog::Update(Table* table, const Rid& rid,
                            const Tuple& tuple) {
  TableState* state = StateOf(table);
  if (state == nullptr) return Status::InvalidArgument("unknown table");
  AIB_ASSIGN_OR_RETURN(
      StatementResult result,
      state->executor->ExecuteStatement(Statement::Update(rid, tuple)));
  return result.rids.front();
}

Status Catalog::CreatePartialIndex(Table* table, ColumnId column,
                                   ValueCoverage coverage,
                                   IndexStructureKind structure) {
  TableState* state = StateOf(table);
  if (state == nullptr) return Status::InvalidArgument("unknown table");
  if (state->indexes.contains(column)) {
    return Status::AlreadyExists("partial index on this column exists");
  }
  auto index = std::make_unique<PartialIndex>(table, column,
                                              std::move(coverage), structure,
                                              &metrics_);
  AIB_RETURN_IF_ERROR(index->Build());
  state->executor->RegisterIndex(index.get());
  if (space_ != nullptr) {
    AIB_RETURN_IF_ERROR(
        space_->CreateBuffer(index.get(), options_.buffer).status());
  }
  state->indexes.emplace(column, std::move(index));
  return Status::Ok();
}

PartialIndex* Catalog::GetIndex(const Table* table, ColumnId column) const {
  TableState* state = StateOf(table);
  if (state == nullptr) return nullptr;
  auto it = state->indexes.find(column);
  return it == state->indexes.end() ? nullptr : it->second.get();
}

IndexBuffer* Catalog::GetBuffer(const Table* table, ColumnId column) const {
  if (space_ == nullptr) return nullptr;
  PartialIndex* index = GetIndex(table, column);
  return index == nullptr ? nullptr : space_->GetBuffer(index);
}

Status Catalog::AttachTuner(Table* table, ColumnId column,
                            IndexTunerOptions options) {
  TableState* state = StateOf(table);
  if (state == nullptr) return Status::InvalidArgument("unknown table");
  PartialIndex* index = GetIndex(table, column);
  if (index == nullptr) {
    return Status::NotFound("no partial index on this column");
  }
  if (state->tuners.contains(column)) {
    return Status::AlreadyExists("tuner on this column exists");
  }
  auto tuner = std::make_unique<IndexTuner>(
      index, options,
      [this, table, column](Value v) { return FindRids(table, column, v); });
  if (space_ != nullptr) {
    IndexBuffer* buffer = space_->GetBuffer(index);
    IndexBufferSpace* space = space_.get();
    tuner->SetAdaptCallback([table, buffer, space](
                                Value value, const std::vector<Rid>& rids,
                                bool added) {
      std::vector<size_t> pages;
      pages.reserve(rids.size());
      for (const Rid& rid : rids) {
        Result<size_t> page = table->PageNumberOf(rid);
        pages.push_back(page.ok() ? page.value() : 0);
      }
      // No latch here: adaptation fires from Catalog::Execute, which holds
      // the executor's statement membrane *exclusively* — the one quiesce
      // point in the partition-granular scheme — so no statement (scan,
      // probe, or DML) is in flight while the partial index's coverage and
      // the buffer/C[p] adjustments change together.
      (void)space;
      // Only fails on a size mismatch, impossible by construction here.
      (void)ApplyAdaptation(buffer, value, rids, pages, added);
    });
  }
  state->tuners.emplace(column, std::move(tuner));
  return Status::Ok();
}

IndexTuner* Catalog::GetTuner(const Table* table, ColumnId column) const {
  TableState* state = StateOf(table);
  if (state == nullptr) return nullptr;
  auto it = state->tuners.find(column);
  return it == state->tuners.end() ? nullptr : it->second.get();
}

Result<QueryResult> Catalog::Execute(Table* table, const Query& query,
                                     const QueryControl* control) {
  TableState* state = StateOf(table);
  if (state == nullptr) return Status::InvalidArgument("unknown table");
  AIB_ASSIGN_OR_RETURN(QueryResult result,
                       state->executor->Execute(query, control));
  if (query.IsPoint()) {
    if (IndexTuner* tuner = GetTuner(table, query.column); tuner != nullptr) {
      // Quiesce point: tuner adaptation mutates partial-index *coverage*,
      // which optimistic probes read latch-free, so it runs with the
      // statement membrane held exclusively — the only exclusive
      // acquisition in the production latch scheme. The executor's own
      // Execute above released its shared hold before returning.
      std::unique_lock<std::shared_mutex> quiesce(
          state->executor->statement_latch());
      tuner->OnQuery(query.lo);
    }
  }
  return result;
}

Result<QueryResult> Catalog::FullScan(Table* table, const Query& query) {
  TableState* state = StateOf(table);
  if (state == nullptr) return Status::InvalidArgument("unknown table");
  return state->executor->FullScan(query);
}

Result<QueryResult> Catalog::IndexScan(Table* table, const Query& query) {
  TableState* state = StateOf(table);
  if (state == nullptr) return Status::InvalidArgument("unknown table");
  return state->executor->IndexScan(query);
}

std::vector<Rid> Catalog::FindRids(const Table* table, ColumnId column,
                                   Value value) const {
  std::vector<Rid> rids;
  (void)table->heap().ForEachTuple([&](const Rid& rid, const Tuple& tuple) {
    if (tuple.IntValue(table->schema(), column) == value) {
      rids.push_back(rid);
    }
  });
  return rids;
}

}  // namespace aib
