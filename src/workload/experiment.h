#ifndef AIB_WORKLOAD_EXPERIMENT_H_
#define AIB_WORKLOAD_EXPERIMENT_H_

#include <memory>
#include <vector>

#include "workload/database.h"
#include "workload/workload_gen.h"

namespace aib {

/// The common data setup of the paper's evaluation (§V): one table with
/// three INTEGER columns (A, B, C) uniformly drawn from [1, 50000], a
/// VARCHAR(512) payload of uniform length [1, 512], 500,000 tuples, and a
/// partial index per column covering the top 10% of the value range —
/// which the paper phrases as "values from 1 to 5,000".
struct PaperSetupOptions {
  size_t num_tuples = 500000;
  int int_columns = 3;
  Value value_min = 1;
  Value value_max = 50000;
  Value covered_lo = 1;
  Value covered_hi = 5000;
  uint16_t payload_min = 1;
  uint16_t payload_max = 512;
  uint64_t seed = 1;
  /// Create a partial index (and Index Buffer when enabled) per int column.
  bool create_indexes = true;
  DatabaseOptions db;
};

/// Builds, loads, and indexes a Database per `options`.
Result<std::unique_ptr<Database>> BuildPaperDatabase(
    const PaperSetupOptions& options);

/// One per-query record of an experiment run — the unit the paper's
/// per-query figures (6-9) plot.
struct SeriesPoint {
  size_t query_index = 0;
  ColumnId column = 0;
  Value value = 0;
  QueryStats stats;
  /// Entries per Index Buffer (indexed by int column id), sampled after the
  /// query.
  std::vector<size_t> buffer_entries;
};

/// Runs the generator's whole workload against `db`, recording one
/// SeriesPoint per query.
Result<std::vector<SeriesPoint>> RunWorkload(Database* db,
                                             WorkloadGenerator* generator);

}  // namespace aib

#endif  // AIB_WORKLOAD_EXPERIMENT_H_
