// Snapshot persistence for Catalog (see catalog.h for the semantics: only
// durable state is saved; Index Buffers and tuners are recovery-free by
// design, §VII).
//
// Binary format (little-endian):
//   magic "AIBSNAP1"
//   u32 page_size
//   u64 page_count          | raw pages follow, page_size bytes each
//   u32 table_count
//   per table:
//     string name
//     u32 column_count; per column: string name, u8 type, u16 max_length
//     u64 heap_page_id_count; u32 page ids (ascending)
//     u64 tuple_count
//     u32 index_count
//     per index: u16 column, u8 structure_kind,
//                u32 interval_count; per interval: i32 lo, i32 hi

#include <cstring>
#include <fstream>

#include "workload/catalog.h"

namespace aib {

namespace {

constexpr char kMagic[8] = {'A', 'I', 'B', 'S', 'N', 'A', 'P', '1'};

template <typename T>
void WritePod(std::ostream& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  static_assert(std::is_trivially_copyable_v<T>);
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}

void WriteString(std::ostream& out, const std::string& s) {
  WritePod<uint32_t>(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadString(std::istream& in, std::string* s) {
  uint32_t length;
  if (!ReadPod(in, &length)) return false;
  if (length > (1u << 20)) return false;  // sanity bound for metadata
  s->resize(length);
  in.read(s->data(), length);
  return in.good() || (length == 0 && !in.bad());
}

}  // namespace

Status Catalog::SaveSnapshot(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot open snapshot file " + path);
  }
  return SaveSnapshotTo(out);
}

Status Catalog::SaveSnapshotTo(std::ostream& out) {
  AIB_RETURN_IF_ERROR(pool_->FlushAll());
  out.write(kMagic, sizeof(kMagic));
  WritePod<uint32_t>(out, options_.page_size);
  WritePod<uint64_t>(out, disk_->PageCount());
  for (PageId id = 0; id < disk_->PageCount(); ++id) {
    const auto raw = disk_->PeekPage(id).raw();
    out.write(reinterpret_cast<const char*>(raw.data()),
              static_cast<std::streamsize>(raw.size()));
  }

  WritePod<uint32_t>(out, static_cast<uint32_t>(tables_.size()));
  for (const auto& [name, state] : tables_) {
    WriteString(out, name);
    const Schema& schema = state->table->schema();
    WritePod<uint32_t>(out, static_cast<uint32_t>(schema.num_columns()));
    for (const ColumnDef& column : schema.columns()) {
      WriteString(out, column.name);
      WritePod<uint8_t>(out, static_cast<uint8_t>(column.type));
      WritePod<uint16_t>(out, column.max_length);
    }
    const std::vector<PageId>& page_ids = state->table->heap().page_ids();
    WritePod<uint64_t>(out, page_ids.size());
    for (PageId id : page_ids) WritePod<uint32_t>(out, id);
    WritePod<uint64_t>(out, state->table->TupleCount());

    WritePod<uint32_t>(out, static_cast<uint32_t>(state->indexes.size()));
    for (const auto& [column, index] : state->indexes) {
      WritePod<uint16_t>(out, column);
      WritePod<uint8_t>(out,
                        static_cast<uint8_t>(index->structure_kind()));
      WritePod<uint32_t>(out,
                         static_cast<uint32_t>(
                             index->coverage().IntervalCount()));
      index->coverage().ForEachInterval([&](Value lo, Value hi) {
        WritePod<int32_t>(out, lo);
        WritePod<int32_t>(out, hi);
      });
    }
  }
  out.flush();
  if (!out.good()) return Status::Internal("snapshot write failed");
  return Status::Ok();
}

Result<std::unique_ptr<Catalog>> Catalog::LoadSnapshot(
    const std::string& path, CatalogOptions options) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("cannot open snapshot file " + path);
  }
  return LoadSnapshotFrom(in, std::move(options));
}

Result<std::unique_ptr<Catalog>> Catalog::LoadSnapshotFrom(
    std::istream& in, CatalogOptions options) {
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad snapshot magic");
  }
  uint32_t page_size;
  uint64_t page_count;
  if (!ReadPod(in, &page_size) || !ReadPod(in, &page_count)) {
    return Status::Corruption("truncated snapshot header");
  }
  options.page_size = page_size;
  auto catalog = std::unique_ptr<Catalog>(new Catalog(options));

  std::vector<uint8_t> raw(page_size);
  for (uint64_t i = 0; i < page_count; ++i) {
    in.read(reinterpret_cast<char*>(raw.data()), page_size);
    if (!in.good()) return Status::Corruption("truncated snapshot page");
    const PageId id = catalog->disk_->AllocatePage();
    AIB_RETURN_IF_ERROR(catalog->disk_->RestorePage(id, raw));
  }

  uint32_t table_count;
  if (!ReadPod(in, &table_count)) {
    return Status::Corruption("truncated table count");
  }
  for (uint32_t t = 0; t < table_count; ++t) {
    std::string name;
    if (!ReadString(in, &name)) return Status::Corruption("bad table name");
    uint32_t column_count;
    if (!ReadPod(in, &column_count) || column_count > 4096) {
      return Status::Corruption("bad column count");
    }
    std::vector<ColumnDef> columns;
    columns.reserve(column_count);
    for (uint32_t c = 0; c < column_count; ++c) {
      ColumnDef column;
      uint8_t type;
      if (!ReadString(in, &column.name) || !ReadPod(in, &type) ||
          !ReadPod(in, &column.max_length)) {
        return Status::Corruption("bad column definition");
      }
      column.type = static_cast<ColumnType>(type);
      columns.push_back(std::move(column));
    }
    AIB_ASSIGN_OR_RETURN(
        Table * table,
        catalog->CreateTable(name, Schema(std::move(columns))));

    uint64_t heap_pages;
    if (!ReadPod(in, &heap_pages)) {
      return Status::Corruption("bad heap page count");
    }
    std::vector<PageId> page_ids;
    page_ids.reserve(heap_pages);
    for (uint64_t p = 0; p < heap_pages; ++p) {
      uint32_t id;
      if (!ReadPod(in, &id) || id >= page_count) {
        return Status::Corruption("bad heap page id");
      }
      page_ids.push_back(id);
    }
    uint64_t tuple_count;
    if (!ReadPod(in, &tuple_count)) {
      return Status::Corruption("bad tuple count");
    }
    table->heap().RestoreState(std::move(page_ids),
                               static_cast<size_t>(tuple_count));

    uint32_t index_count;
    if (!ReadPod(in, &index_count) || index_count > 4096) {
      return Status::Corruption("bad index count");
    }
    for (uint32_t i = 0; i < index_count; ++i) {
      uint16_t column;
      uint8_t kind;
      uint32_t interval_count;
      if (!ReadPod(in, &column) || !ReadPod(in, &kind) ||
          !ReadPod(in, &interval_count) || interval_count > (1u << 24)) {
        return Status::Corruption("bad index metadata");
      }
      ValueCoverage coverage;
      for (uint32_t k = 0; k < interval_count; ++k) {
        int32_t lo;
        int32_t hi;
        if (!ReadPod(in, &lo) || !ReadPod(in, &hi) || lo > hi) {
          return Status::Corruption("bad coverage interval");
        }
        coverage.AddRange(lo, hi);
      }
      // Rebuilds the index from the restored pages and initializes a fresh
      // (empty) Index Buffer with up-to-date page counters.
      AIB_RETURN_IF_ERROR(catalog->CreatePartialIndex(
          table, column, std::move(coverage),
          static_cast<IndexStructureKind>(kind)));
    }
  }
  return catalog;
}

}  // namespace aib
