#include "workload/workload_gen.h"

#include <cassert>

namespace aib {

WorkloadGenerator::WorkloadGenerator(std::vector<PhaseSpec> phases,
                                     uint64_t seed)
    : phases_(std::move(phases)), rng_(seed) {}

size_t WorkloadGenerator::TotalQueries() const {
  size_t total = 0;
  for (const PhaseSpec& phase : phases_) total += phase.num_queries;
  return total;
}

const ZipfGenerator& WorkloadGenerator::ZipfFor(size_t n, double theta) {
  const std::pair<size_t, int> key{n, static_cast<int>(theta * 1000)};
  auto it = zipf_cache_.find(key);
  if (it == zipf_cache_.end()) {
    it = zipf_cache_.emplace(key, ZipfGenerator(n, theta)).first;
  }
  return it->second;
}

std::optional<Query> WorkloadGenerator::Next() {
  while (phase_index_ < phases_.size() &&
         in_phase_ >= phases_[phase_index_].num_queries) {
    ++phase_index_;
    in_phase_ = 0;
  }
  if (phase_index_ >= phases_.size()) return std::nullopt;

  const PhaseSpec& phase = phases_[phase_index_];
  assert(!phase.mix.empty());
  std::vector<double> weights;
  weights.reserve(phase.mix.size());
  for (const ColumnMix& mix : phase.mix) weights.push_back(mix.weight);
  const ColumnMix& mix = phase.mix[rng_.WeightedIndex(weights)];

  const bool hit = rng_.Bernoulli(mix.hit_rate);
  const Value lo = hit ? mix.covered_lo : mix.uncovered_lo;
  const Value hi = hit ? mix.covered_hi : mix.uncovered_hi;
  Value v;
  if (mix.zipf_theta > 0) {
    const size_t range = static_cast<size_t>(hi - lo) + 1;
    const size_t rank = ZipfFor(range, mix.zipf_theta).Sample(rng_);
    v = lo + static_cast<Value>(rank - 1);
  } else {
    v = static_cast<Value>(rng_.UniformInt(lo, hi));
  }

  ++in_phase_;
  ++position_;
  return Query::Point(mix.column, v);
}

}  // namespace aib
