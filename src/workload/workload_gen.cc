#include "workload/workload_gen.h"

#include <cassert>

namespace aib {

WorkloadGenerator::WorkloadGenerator(std::vector<PhaseSpec> phases,
                                     uint64_t seed)
    : phases_(std::move(phases)), rng_(seed) {}

size_t WorkloadGenerator::TotalQueries() const {
  size_t total = 0;
  for (const PhaseSpec& phase : phases_) total += phase.num_queries;
  return total;
}

const ZipfGenerator& WorkloadGenerator::ZipfFor(size_t n, double theta) {
  const std::pair<size_t, int> key{n, static_cast<int>(theta * 1000)};
  auto it = zipf_cache_.find(key);
  if (it == zipf_cache_.end()) {
    it = zipf_cache_.emplace(key, ZipfGenerator(n, theta)).first;
  }
  return it->second;
}

std::optional<Query> WorkloadGenerator::Next() {
  while (phase_index_ < phases_.size() &&
         in_phase_ >= phases_[phase_index_].num_queries) {
    ++phase_index_;
    in_phase_ = 0;
  }
  if (phase_index_ >= phases_.size()) return std::nullopt;

  const PhaseSpec& phase = phases_[phase_index_];
  assert(!phase.mix.empty());
  std::vector<double> weights;
  weights.reserve(phase.mix.size());
  for (const ColumnMix& mix : phase.mix) weights.push_back(mix.weight);
  const ColumnMix& mix = phase.mix[rng_.WeightedIndex(weights)];

  const bool hit = rng_.Bernoulli(mix.hit_rate);
  const Value lo = hit ? mix.covered_lo : mix.uncovered_lo;
  const Value hi = hit ? mix.covered_hi : mix.uncovered_hi;
  Value v;
  if (mix.zipf_theta > 0) {
    const size_t range = static_cast<size_t>(hi - lo) + 1;
    const size_t rank = ZipfFor(range, mix.zipf_theta).Sample(rng_);
    v = lo + static_cast<Value>(rank - 1);
  } else {
    v = static_cast<Value>(rng_.UniformInt(lo, hi));
  }

  ++in_phase_;
  ++position_;
  return Query::Point(mix.column, v);
}

MixedWorkloadGenerator::MixedWorkloadGenerator(MixedWorkloadOptions options,
                                               uint64_t seed)
    : options_(std::move(options)), rng_(seed) {
  if (options_.num_tenants == 0) options_.num_tenants = 1;
  tenant_live_.assign(options_.num_tenants, 0);
}

std::pair<Value, Value> MixedWorkloadGenerator::WriteBandFor(
    uint64_t tenant) const {
  if (!options_.per_tenant_key_ranges || options_.num_tenants <= 1) {
    return {options_.write_lo, options_.write_hi};
  }
  const int64_t width = static_cast<int64_t>(options_.write_hi) -
                        static_cast<int64_t>(options_.write_lo) + 1;
  const int64_t n = static_cast<int64_t>(options_.num_tenants);
  const int64_t t = static_cast<int64_t>(tenant);
  const Value lo =
      options_.write_lo + static_cast<Value>(width * t / n);
  const Value hi =
      options_.write_lo + static_cast<Value>(width * (t + 1) / n - 1);
  return {lo, hi};
}

const ZipfGenerator& MixedWorkloadGenerator::ZipfFor(size_t n, double theta) {
  const std::pair<size_t, int> key{n, static_cast<int>(theta * 1000)};
  auto it = zipf_cache_.find(key);
  if (it == zipf_cache_.end()) {
    it = zipf_cache_.emplace(key, ZipfGenerator(n, theta)).first;
  }
  return it->second;
}

Query MixedWorkloadGenerator::NextRead() {
  assert(!options_.read_mix.empty());
  std::vector<double> weights;
  weights.reserve(options_.read_mix.size());
  for (const ColumnMix& mix : options_.read_mix) {
    weights.push_back(mix.weight);
  }
  const ColumnMix& mix = options_.read_mix[rng_.WeightedIndex(weights)];
  const bool hit = rng_.Bernoulli(mix.hit_rate);
  const Value lo = hit ? mix.covered_lo : mix.uncovered_lo;
  const Value hi = hit ? mix.covered_hi : mix.uncovered_hi;
  Value v;
  if (mix.zipf_theta > 0) {
    const size_t range = static_cast<size_t>(hi - lo) + 1;
    const size_t rank = ZipfFor(range, mix.zipf_theta).Sample(rng_);
    v = lo + static_cast<Value>(rank - 1);
  } else {
    v = static_cast<Value>(rng_.UniformInt(lo, hi));
  }
  return Query::Point(mix.column, v);
}

std::optional<MixedOp> MixedWorkloadGenerator::Next() {
  if (position_ >= options_.num_statements) return std::nullopt;
  ++position_;

  MixedOp op;
  // The tenant draw happens only in multi-tenant mode, so num_tenants==1
  // consumes the exact rng stream of the single-tenant generator.
  if (options_.num_tenants > 1) {
    if (options_.tenant_zipf_theta > 0) {
      op.tenant = static_cast<uint64_t>(
          ZipfFor(options_.num_tenants, options_.tenant_zipf_theta)
              .Sample(rng_) -
          1);
    } else {
      op.tenant = static_cast<uint64_t>(rng_.UniformInt(
          0, static_cast<int64_t>(options_.num_tenants) - 1));
    }
  }
  if (!rng_.Bernoulli(options_.write_fraction)) {
    op.kind = StatementKind::kSelect;
    op.query = NextRead();
    return op;
  }

  const size_t tenant_live = tenant_live_[op.tenant];
  size_t kind_index = rng_.WeightedIndex({options_.insert_weight,
                                          options_.update_weight,
                                          options_.delete_weight});
  // Updates/deletes need a live victim owned by the issuing tenant;
  // degrade to an insert until it has one.
  if (tenant_live == 0) kind_index = 0;

  if (kind_index == 0) {
    op.kind = StatementKind::kInsert;
  } else {
    op.kind =
        kind_index == 1 ? StatementKind::kUpdate : StatementKind::kDelete;
    if (options_.victim_zipf_theta > 0 && tenant_live > 1) {
      op.victim_rank =
          ZipfFor(tenant_live, options_.victim_zipf_theta).Sample(rng_);
    } else {
      op.victim_rank = static_cast<size_t>(
          rng_.UniformInt(1, static_cast<int64_t>(tenant_live)));
    }
  }
  if (op.kind != StatementKind::kDelete) {
    const auto [lo, hi] = WriteBandFor(op.tenant);
    op.values.reserve(options_.values_per_tuple);
    for (size_t i = 0; i < options_.values_per_tuple; ++i) {
      op.values.push_back(static_cast<Value>(rng_.UniformInt(lo, hi)));
    }
  }
  if (op.kind == StatementKind::kInsert) {
    ++live_rows_;
    ++tenant_live_[op.tenant];
  }
  if (op.kind == StatementKind::kDelete) {
    --live_rows_;
    --tenant_live_[op.tenant];
  }
  return op;
}

}  // namespace aib
