#ifndef AIB_WORKLOAD_WORKLOAD_GEN_H_
#define AIB_WORKLOAD_WORKLOAD_GEN_H_

#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "exec/query.h"
#include "exec/statement.h"
#include "workload/zipf.h"

namespace aib {

/// One column's share of a workload phase.
struct ColumnMix {
  ColumnId column = 0;
  /// Relative probability of drawing a query against this column.
  double weight = 1.0;
  /// Probability that the drawn value lies in the covered range (a partial
  /// index hit). The paper's Exp. 1-3 use 0 (only unindexed values);
  /// Exp. 4 uses 0.8 then 0.2 for column A.
  double hit_rate = 0.0;
  /// Value range drawn on a hit.
  Value covered_lo = 1;
  Value covered_hi = 5000;
  /// Value range drawn on a miss.
  Value uncovered_lo = 5001;
  Value uncovered_hi = 50000;
  /// Skew of the value draw within the chosen range: 0 = uniform (the
  /// paper's workloads); 0 < theta < 1 = Zipfian with the hottest value at
  /// the range's low end (extension, see workload/zipf.h).
  double zipf_theta = 0.0;
};

/// A contiguous run of queries with a fixed column mix.
struct PhaseSpec {
  size_t num_queries = 100;
  std::vector<ColumnMix> mix;
};

/// Deterministic multi-phase point-query generator reproducing the paper's
/// workloads: per-phase column mixes (Exp. 3 switches 1/2:1/3:1/6 to
/// 1/6:1/3:1/2 after 100 queries) and per-column partial-index hit rates
/// (Exp. 4).
class WorkloadGenerator {
 public:
  WorkloadGenerator(std::vector<PhaseSpec> phases, uint64_t seed);

  /// Next query, or nullopt when all phases are exhausted.
  std::optional<Query> Next();

  /// Total queries across all phases.
  size_t TotalQueries() const;

  /// Index of the query Next() will produce next (0-based).
  size_t position() const { return position_; }

 private:
  /// Cached Zipf samplers keyed by (range size, theta-in-millis).
  const ZipfGenerator& ZipfFor(size_t n, double theta);

  std::vector<PhaseSpec> phases_;
  Rng rng_;
  size_t phase_index_ = 0;
  size_t in_phase_ = 0;
  size_t position_ = 0;
  std::map<std::pair<size_t, int>, ZipfGenerator> zipf_cache_;
};

/// Configuration of the mixed read/write generator.
struct MixedWorkloadOptions {
  size_t num_statements = 1000;
  /// Probability a statement is DML rather than a read. 0 reproduces a
  /// pure read workload (bit-identical reads for a given seed regardless
  /// of the write knobs).
  double write_fraction = 0.1;
  /// Relative weights of the DML kinds within the write fraction. Updates
  /// and deletes need a live generator-inserted row to target; until one
  /// exists they degrade to inserts.
  double insert_weight = 1.0;
  double update_weight = 1.0;
  double delete_weight = 1.0;
  /// Int-column values of generated tuples are drawn uniformly from
  /// [write_lo, write_hi] — keep this band disjoint from the read mix's
  /// query values when an oracle must stay valid for the read stream.
  Value write_lo = 5001;
  Value write_hi = 50000;
  /// Number of int-column values per generated tuple (MixedOp::values).
  size_t values_per_tuple = 1;
  /// Zipf skew of the victim choice for updates/deletes over the live
  /// generator-inserted rows: rank 1 = the most recently inserted live
  /// row. 0 = uniform.
  double victim_zipf_theta = 0.0;
  /// The read side of the mix, sampled exactly like one WorkloadGenerator
  /// phase (point queries).
  std::vector<ColumnMix> read_mix;
  /// Multi-tenant extension. With num_tenants > 1 every op carries a
  /// tenant id drawn per statement (Zipf-skewed when tenant_zipf_theta >
  /// 0, tenant 0 hottest; uniform otherwise) and victim ranks count
  /// within the tenant's own live rows. num_tenants == 1 draws nothing
  /// extra, keeping the rng stream — and thus the generated ops —
  /// bit-identical to the single-tenant generator for a given seed.
  size_t num_tenants = 1;
  double tenant_zipf_theta = 0.0;
  /// Partition [write_lo, write_hi] into num_tenants contiguous equal
  /// bands and draw tenant t's tuple values from band t only — gives each
  /// tenant a disjoint key range so routed traffic is attributable.
  bool per_tenant_key_ranges = false;
};

/// One generated operation. Reads carry `query`; inserts and updates carry
/// `values` (one per int column, in column order); updates and deletes
/// carry `victim_rank`, the 1-based recency rank of the targeted row among
/// the rows this generator has inserted and not yet deleted (1 = newest).
/// The harness owns the rank→rid mapping: it keeps the rids of applied
/// inserts in order and resolves rank r to the r-th newest live one (and
/// must tell no one else — the generator tracks only the live count).
struct MixedOp {
  StatementKind kind = StatementKind::kSelect;
  Query query;
  std::vector<Value> values;
  size_t victim_rank = 0;
  /// Issuing tenant (always 0 when num_tenants == 1). With multiple
  /// tenants, victim_rank ranks within THIS tenant's live rows — the
  /// harness keeps one rid list per tenant.
  uint64_t tenant = 0;
};

/// Deterministic mixed read/write generator for the statement pipeline:
/// a configurable write fraction with Zipf-skewed update/delete targets
/// layered over the paper-style point-query read mix. Same seed, same
/// options → bit-identical operation stream.
class MixedWorkloadGenerator {
 public:
  MixedWorkloadGenerator(MixedWorkloadOptions options, uint64_t seed);

  /// Next operation, or nullopt after num_statements.
  std::optional<MixedOp> Next();

  size_t position() const { return position_; }
  /// The generator's model of its own live (inserted-minus-deleted) rows,
  /// summed over all tenants.
  size_t live_rows() const { return live_rows_; }
  /// Live rows attributed to one tenant.
  size_t live_rows_for(uint64_t tenant) const {
    return tenant < tenant_live_.size() ? tenant_live_[tenant] : 0;
  }
  /// Tenant t's tuple-value band [lo, hi] under per_tenant_key_ranges
  /// (the full write band otherwise).
  std::pair<Value, Value> WriteBandFor(uint64_t tenant) const;

 private:
  Query NextRead();
  const ZipfGenerator& ZipfFor(size_t n, double theta);

  MixedWorkloadOptions options_;
  Rng rng_;
  size_t position_ = 0;
  size_t live_rows_ = 0;
  /// Per-tenant live-row counts (index = tenant id).
  std::vector<size_t> tenant_live_;
  std::map<std::pair<size_t, int>, ZipfGenerator> zipf_cache_;
};

}  // namespace aib

#endif  // AIB_WORKLOAD_WORKLOAD_GEN_H_
