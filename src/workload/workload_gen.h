#ifndef AIB_WORKLOAD_WORKLOAD_GEN_H_
#define AIB_WORKLOAD_WORKLOAD_GEN_H_

#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "exec/query.h"
#include "workload/zipf.h"

namespace aib {

/// One column's share of a workload phase.
struct ColumnMix {
  ColumnId column = 0;
  /// Relative probability of drawing a query against this column.
  double weight = 1.0;
  /// Probability that the drawn value lies in the covered range (a partial
  /// index hit). The paper's Exp. 1-3 use 0 (only unindexed values);
  /// Exp. 4 uses 0.8 then 0.2 for column A.
  double hit_rate = 0.0;
  /// Value range drawn on a hit.
  Value covered_lo = 1;
  Value covered_hi = 5000;
  /// Value range drawn on a miss.
  Value uncovered_lo = 5001;
  Value uncovered_hi = 50000;
  /// Skew of the value draw within the chosen range: 0 = uniform (the
  /// paper's workloads); 0 < theta < 1 = Zipfian with the hottest value at
  /// the range's low end (extension, see workload/zipf.h).
  double zipf_theta = 0.0;
};

/// A contiguous run of queries with a fixed column mix.
struct PhaseSpec {
  size_t num_queries = 100;
  std::vector<ColumnMix> mix;
};

/// Deterministic multi-phase point-query generator reproducing the paper's
/// workloads: per-phase column mixes (Exp. 3 switches 1/2:1/3:1/6 to
/// 1/6:1/3:1/2 after 100 queries) and per-column partial-index hit rates
/// (Exp. 4).
class WorkloadGenerator {
 public:
  WorkloadGenerator(std::vector<PhaseSpec> phases, uint64_t seed);

  /// Next query, or nullopt when all phases are exhausted.
  std::optional<Query> Next();

  /// Total queries across all phases.
  size_t TotalQueries() const;

  /// Index of the query Next() will produce next (0-based).
  size_t position() const { return position_; }

 private:
  /// Cached Zipf samplers keyed by (range size, theta-in-millis).
  const ZipfGenerator& ZipfFor(size_t n, double theta);

  std::vector<PhaseSpec> phases_;
  Rng rng_;
  size_t phase_index_ = 0;
  size_t in_phase_ = 0;
  size_t position_ = 0;
  std::map<std::pair<size_t, int>, ZipfGenerator> zipf_cache_;
};

}  // namespace aib

#endif  // AIB_WORKLOAD_WORKLOAD_GEN_H_
