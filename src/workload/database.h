#ifndef AIB_WORKLOAD_DATABASE_H_
#define AIB_WORKLOAD_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "workload/catalog.h"

namespace aib {

/// Options of the single-table facade; field-compatible with
/// CatalogOptions (Database simply forwards them).
struct DatabaseOptions {
  uint32_t page_size = kDefaultPageSize;
  /// Frames in the page buffer pool.
  size_t buffer_pool_pages = 1 << 16;
  /// See HeapFileOptions.
  uint16_t max_tuples_per_page = 0;
  /// Index Buffer Space configuration; ignored if !enable_index_buffer.
  BufferSpaceOptions space;
  /// Default options for lazily created Index Buffers.
  IndexBufferOptions buffer;
  bool enable_index_buffer = true;
  CostModelOptions cost;
  /// Replacement policy of the page buffer pool (see storage/buffer_pool.h).
  EvictionPolicy eviction_policy = EvictionPolicy::kSegmented;
  /// Stand up the async prefetch pipeline (storage/io_scheduler.h); see
  /// CatalogOptions::enable_io_scheduler.
  bool enable_io_scheduler = false;
  IoSchedulerOptions io;
};

/// The single-table convenience facade: one table, its partial secondary
/// indexes, optional Index Buffer Space, optional online tuners, and the
/// executor — wired together with full DML maintenance (Table I) and
/// adaptation propagation.
///
/// Internally a Catalog with exactly one table; multi-table workloads
/// (Index Buffers of different tables competing for one space, §IV) use
/// Catalog directly.
class Database {
 public:
  explicit Database(Schema schema, DatabaseOptions options = {},
                    std::string table_name = "t");

  /// Adopts a catalog restored from a snapshot (warm shard restart): the
  /// catalog must already contain `table_name`. `options` records the
  /// runtime configuration the catalog was loaded under.
  Database(std::unique_ptr<Catalog> catalog, DatabaseOptions options,
           const std::string& table_name);

  /// The catalog-level view of these facade options; public so restart
  /// paths can LoadSnapshot under the same runtime configuration.
  static CatalogOptions ToCatalogOptions(const DatabaseOptions& options);

  Table& table() { return *table_; }
  const Table& table() const { return *table_; }
  Metrics& metrics() { return catalog_->metrics(); }
  IndexBufferSpace* space() { return catalog_->space(); }
  BufferPool& buffer_pool() { return catalog_->buffer_pool(); }
  Catalog& catalog() { return *catalog_; }
  const DatabaseOptions& options() const { return options_; }

  // --- DML (thin wrappers over the statement pipeline) ----------------------
  //
  // These delegate through Catalog to Executor::ExecuteStatement — the
  // same path a QueryService statement takes — so Table I maintenance has
  // exactly one implementation regardless of entry point.

  Result<Rid> Insert(const Tuple& tuple) {
    return catalog_->Insert(table_, tuple);
  }
  Status Delete(const Rid& rid) { return catalog_->Delete(table_, rid); }
  Result<Rid> Update(const Rid& rid, const Tuple& tuple) {
    return catalog_->Update(table_, rid, tuple);
  }

  /// Inserts without maintenance — for initial loading *before* indexes
  /// are created (indexes Build() from scratch anyway).
  Result<Rid> LoadTuple(const Tuple& tuple) {
    return catalog_->LoadTuple(table_, tuple);
  }

  // --- Indexing -------------------------------------------------------------

  /// Creates and builds a partial index on `column`; creates its Index
  /// Buffer (with initialized page counters) when the space is enabled.
  Status CreatePartialIndex(ColumnId column, ValueCoverage coverage,
                            IndexStructureKind structure =
                                IndexStructureKind::kBTree) {
    return catalog_->CreatePartialIndex(table_, column, std::move(coverage),
                                       structure);
  }

  PartialIndex* GetIndex(ColumnId column) const {
    return catalog_->GetIndex(table_, column);
  }
  IndexBuffer* GetBuffer(ColumnId column) const {
    return catalog_->GetBuffer(table_, column);
  }

  /// Attaches an online tuner (Fig. 1 mechanism) to `column`'s partial
  /// index; adaptation scans and buffer consistency hooks are wired
  /// automatically.
  Status AttachTuner(ColumnId column, IndexTunerOptions options) {
    return catalog_->AttachTuner(table_, column, options);
  }
  IndexTuner* GetTuner(ColumnId column) const {
    return catalog_->GetTuner(table_, column);
  }

  /// The table's executor, for standing up a QueryService over this
  /// database (service/query_service.h).
  Executor* executor() const { return catalog_->executor(table_); }

  // --- Queries --------------------------------------------------------------

  /// Executes with access-path selection; also steps the column's tuner if
  /// one is attached (point queries only).
  Result<QueryResult> Execute(const Query& query) {
    return catalog_->Execute(table_, query);
  }

  Result<QueryResult> FullScan(const Query& query) {
    return catalog_->FullScan(table_, query);
  }
  Result<QueryResult> IndexScan(const Query& query) {
    return catalog_->IndexScan(table_, query);
  }

  /// Rids of all tuples with `value` in `column` (full scan).
  std::vector<Rid> FindRids(ColumnId column, Value value) const {
    return catalog_->FindRids(table_, column, value);
  }

 private:
  DatabaseOptions options_;
  std::unique_ptr<Catalog> catalog_;
  Table* table_;
};

}  // namespace aib

#endif  // AIB_WORKLOAD_DATABASE_H_
