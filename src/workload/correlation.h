#ifndef AIB_WORKLOAD_CORRELATION_H_
#define AIB_WORKLOAD_CORRELATION_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace aib {

/// One sample of the Fig. 3 simulation: how many pages remain fully
/// indexed at a given physical/logical order correlation.
struct CorrelationPoint {
  /// Pearson correlation between a tuple's physical position and its
  /// logical rank (1 = perfectly clustered).
  double correlation = 1.0;
  /// Fraction of pages all of whose tuples are covered by the partial
  /// index.
  double fully_indexed_fraction = 0.0;
};

/// Parameters of the Fig. 3 simulation.
struct CorrelationSweepOptions {
  size_t num_tuples = 100000;
  size_t tuples_per_page = 10;
  /// Fraction of the value domain covered by the partial index. At
  /// correlation 1 the fully-indexed fraction equals this value (§II).
  double coverage_fraction = 0.5;
  /// Number of measurement steps from correlation 1 downward.
  size_t steps = 100;
  /// Random tuple swaps applied between consecutive measurements.
  size_t swaps_per_step = 2000;
  uint64_t seed = 7;
};

/// Runs the Fig. 3 simulation: starts from a perfectly clustered tuple
/// order (physical == logical, correlation 1), gradually swaps randomly
/// picked tuples, and records the fully-indexed page fraction after each
/// step. The correlation and the page counts are maintained incrementally,
/// so the sweep is O(steps * swaps + tuples).
std::vector<CorrelationPoint> SimulateCorrelationSweep(
    const CorrelationSweepOptions& options);

}  // namespace aib

#endif  // AIB_WORKLOAD_CORRELATION_H_
