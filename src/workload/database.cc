#include "workload/database.h"

#include <cassert>

namespace aib {

CatalogOptions Database::ToCatalogOptions(const DatabaseOptions& options) {
  CatalogOptions catalog_options;
  catalog_options.page_size = options.page_size;
  catalog_options.buffer_pool_pages = options.buffer_pool_pages;
  catalog_options.max_tuples_per_page = options.max_tuples_per_page;
  catalog_options.space = options.space;
  catalog_options.buffer = options.buffer;
  catalog_options.enable_index_buffer = options.enable_index_buffer;
  catalog_options.cost = options.cost;
  catalog_options.eviction_policy = options.eviction_policy;
  catalog_options.enable_io_scheduler = options.enable_io_scheduler;
  catalog_options.io = options.io;
  return catalog_options;
}

Database::Database(Schema schema, DatabaseOptions options,
                   std::string table_name)
    : options_(options),
      catalog_(std::make_unique<Catalog>(ToCatalogOptions(options))) {
  Result<Table*> table =
      catalog_->CreateTable(std::move(table_name), std::move(schema));
  // The catalog is empty at this point; creation cannot collide.
  assert(table.ok());
  table_ = table.value();
}

Database::Database(std::unique_ptr<Catalog> catalog, DatabaseOptions options,
                   const std::string& table_name)
    : options_(options), catalog_(std::move(catalog)) {
  table_ = catalog_->GetTable(table_name);
  // Adopting a snapshot that lacks the table is a programming error, not a
  // runtime condition — restarts reload the snapshot they just saved.
  assert(table_ != nullptr);
}

}  // namespace aib
