#include "workload/correlation.h"

#include <cassert>
#include <cstdint>

namespace aib {

std::vector<CorrelationPoint> SimulateCorrelationSweep(
    const CorrelationSweepOptions& options) {
  const size_t n = options.num_tuples;
  const size_t tpp = options.tuples_per_page;
  assert(n > 1 && tpp > 0);
  const size_t num_pages = (n + tpp - 1) / tpp;
  const size_t covered_below =
      static_cast<size_t>(options.coverage_fraction * static_cast<double>(n));

  // Clustered start: the tuple at position i has logical rank i; ranks
  // below `covered_below` are covered by the partial index.
  std::vector<uint32_t> value(n);
  for (size_t i = 0; i < n; ++i) value[i] = static_cast<uint32_t>(i);

  // Per-page covered-tuple counts and the fully-indexed page counter.
  std::vector<uint32_t> covered_in_page(num_pages, 0);
  std::vector<uint32_t> page_size(num_pages, 0);
  for (size_t i = 0; i < n; ++i) {
    const size_t page = i / tpp;
    ++page_size[page];
    if (value[i] < covered_below) ++covered_in_page[page];
  }
  size_t fully_indexed = 0;
  for (size_t p = 0; p < num_pages; ++p) {
    if (covered_in_page[p] == page_size[p]) ++fully_indexed;
  }

  // Pearson correlation of (position, value): both are permutations of
  // 0..n-1, so means and variances are fixed; only S = sum(pos * value)
  // changes, and a swap changes it by (i - j) * (b - a).
  int64_t s = 0;
  for (size_t i = 0; i < n; ++i) {
    s += static_cast<int64_t>(i) * static_cast<int64_t>(value[i]);
  }
  const double mean = static_cast<double>(n - 1) / 2.0;
  const double variance =
      (static_cast<double>(n) * static_cast<double>(n) - 1.0) / 12.0;
  auto pearson = [&]() {
    const double covariance =
        static_cast<double>(s) / static_cast<double>(n) - mean * mean;
    return covariance / variance;
  };

  auto mark_page = [&](size_t page, int delta_covered) {
    const bool was_full = covered_in_page[page] == page_size[page];
    covered_in_page[page] =
        static_cast<uint32_t>(static_cast<int64_t>(covered_in_page[page]) +
                              delta_covered);
    const bool is_full = covered_in_page[page] == page_size[page];
    if (was_full && !is_full) --fully_indexed;
    if (!was_full && is_full) ++fully_indexed;
  };

  Rng rng(options.seed);
  std::vector<CorrelationPoint> points;
  points.reserve(options.steps + 1);
  points.push_back(
      {pearson(), static_cast<double>(fully_indexed) /
                      static_cast<double>(num_pages)});

  for (size_t step = 0; step < options.steps; ++step) {
    for (size_t swap = 0; swap < options.swaps_per_step; ++swap) {
      const size_t i =
          static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
      const size_t j =
          static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
      if (i == j) continue;
      const uint32_t a = value[i];
      const uint32_t b = value[j];
      value[i] = b;
      value[j] = a;
      s += (static_cast<int64_t>(i) - static_cast<int64_t>(j)) *
           (static_cast<int64_t>(b) - static_cast<int64_t>(a));
      const bool a_covered = a < covered_below;
      const bool b_covered = b < covered_below;
      if (a_covered != b_covered) {
        const size_t page_i = i / tpp;
        const size_t page_j = j / tpp;
        if (page_i != page_j) {
          mark_page(page_i, b_covered ? 1 : -1);
          mark_page(page_j, a_covered ? 1 : -1);
        }
      }
    }
    points.push_back(
        {pearson(), static_cast<double>(fully_indexed) /
                        static_cast<double>(num_pages)});
  }
  return points;
}

}  // namespace aib
