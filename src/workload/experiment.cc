#include "workload/experiment.h"

#include <string>

namespace aib {

Result<std::unique_ptr<Database>> BuildPaperDatabase(
    const PaperSetupOptions& options) {
  Schema schema = Schema::PaperSchema(options.int_columns,
                                      options.payload_max);
  auto db = std::make_unique<Database>(std::move(schema), options.db);

  Rng rng(options.seed);
  const Schema& s = db->table().schema();
  const std::vector<ColumnId> int_columns = s.IntColumnIds();
  for (size_t i = 0; i < options.num_tuples; ++i) {
    std::vector<Value> ints;
    ints.reserve(int_columns.size());
    for (size_t c = 0; c < int_columns.size(); ++c) {
      ints.push_back(static_cast<Value>(
          rng.UniformInt(options.value_min, options.value_max)));
    }
    const size_t payload_len = static_cast<size_t>(
        rng.UniformInt(options.payload_min, options.payload_max));
    std::vector<std::string> strings{std::string(payload_len, 'x')};
    AIB_RETURN_IF_ERROR(
        db->LoadTuple(Tuple(std::move(ints), std::move(strings))).status());
  }

  if (options.create_indexes) {
    for (ColumnId column : int_columns) {
      AIB_RETURN_IF_ERROR(db->CreatePartialIndex(
          column,
          ValueCoverage::Range(options.covered_lo, options.covered_hi)));
    }
  }
  return db;
}

Result<std::vector<SeriesPoint>> RunWorkload(Database* db,
                                             WorkloadGenerator* generator) {
  std::vector<SeriesPoint> series;
  series.reserve(generator->TotalQueries());
  const std::vector<ColumnId> int_columns =
      db->table().schema().IntColumnIds();
  size_t query_index = 0;
  while (true) {
    std::optional<Query> query = generator->Next();
    if (!query.has_value()) break;
    AIB_ASSIGN_OR_RETURN(QueryResult result, db->Execute(*query));
    SeriesPoint point;
    point.query_index = query_index++;
    point.column = query->column;
    point.value = query->lo;
    point.stats = result.stats;
    point.buffer_entries.reserve(int_columns.size());
    for (ColumnId column : int_columns) {
      IndexBuffer* buffer = db->GetBuffer(column);
      point.buffer_entries.push_back(
          buffer == nullptr ? 0 : buffer->TotalEntries());
    }
    series.push_back(std::move(point));
  }
  return series;
}

}  // namespace aib
