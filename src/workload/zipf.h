#ifndef AIB_WORKLOAD_ZIPF_H_
#define AIB_WORKLOAD_ZIPF_H_

#include <cstddef>

#include "common/rng.h"

namespace aib {

/// Zipf-distributed rank sampler over [1, n] (rank 1 is the hottest),
/// using the closed-form method of Gray et al. (SIGMOD'94). Skew
/// `theta` ∈ [0, 1): 0 degenerates to uniform, 0.99 is the YCSB-style
/// "hot" default.
///
/// An extension beyond the paper's uniform workloads: skewed value
/// popularity concentrates the monitoring window of the tuner and the
/// benefit of individual Index Buffer partitions.
class ZipfGenerator {
 public:
  /// Precomputes the zeta constants for a fixed (n, theta). Requires
  /// n >= 1 and 0 <= theta < 1.
  ZipfGenerator(size_t n, double theta);

  /// Samples a rank in [1, n] using `rng`.
  size_t Sample(Rng& rng) const;

  size_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  size_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
  double threshold2_;  // uz below this (and >= 1) maps to rank 2
};

}  // namespace aib

#endif  // AIB_WORKLOAD_ZIPF_H_
