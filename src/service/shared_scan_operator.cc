#include "service/shared_scan_operator.h"

namespace aib {

SharedScanOperator::SharedScanOperator(SharedScanManager* scans,
                                       const Table* table,
                                       std::vector<ColumnPredicate> predicates)
    : scans_(scans), table_(table), predicates_(std::move(predicates)) {}

std::string SharedScanOperator::Describe() const {
  return PredicatesToString(predicates_);
}

Status SharedScanOperator::Open(ExecContext*) {
  heap_latch_ = table_->page_latches().AcquireAllShared();
  scanned_ = false;
  pending_.clear();
  cursor_ = 0;
  return Status::Ok();
}

Result<bool> SharedScanOperator::NextBatch(TupleBatch* out) {
  out->Clear();
  if (!scanned_) {
    scanned_ = true;
    const Schema& schema = table_->schema();
    AIB_RETURN_IF_ERROR(scans_->Scan(
        *table_,
        [&](const Rid& rid, const Tuple& tuple) {
          if (MatchesAll(tuple, schema, predicates_)) {
            pending_.push_back(rid);
          }
        },
        &scan_stats_));
    stats_.pages_scanned = scan_stats_.pages_delivered;
  }
  if (!EmitRidChunk(pending_, &cursor_, /*needs_fetch=*/false, out)) {
    return false;
  }
  stats_.rows_out += out->ActiveCount();
  return true;
}

Status SharedScanOperator::Close() {
  heap_latch_.Release();
  return Status::Ok();
}

}  // namespace aib
