#include "service/shared_scan_operator.h"

namespace aib {

SharedScanOperator::SharedScanOperator(SharedScanManager* scans,
                                       const Table* table,
                                       std::vector<ColumnPredicate> predicates)
    : scans_(scans), table_(table), predicates_(std::move(predicates)) {}

std::string SharedScanOperator::Describe() const {
  return PredicatesToString(predicates_);
}

Status SharedScanOperator::Open(ExecContext*) {
  done_ = false;
  return Status::Ok();
}

Result<bool> SharedScanOperator::Next(Batch* out) {
  out->Clear();
  if (done_) return false;
  done_ = true;
  const Schema& schema = table_->schema();
  AIB_RETURN_IF_ERROR(scans_->Scan(
      *table_,
      [&](const Rid& rid, const Tuple& tuple) {
        if (MatchesAll(tuple, schema, predicates_)) out->rids.push_back(rid);
      },
      &scan_stats_));
  stats_.pages_scanned = scan_stats_.pages_delivered;
  stats_.rows_out += out->rids.size();
  return true;
}

Status SharedScanOperator::Close() { return Status::Ok(); }

}  // namespace aib
