#ifndef AIB_SERVICE_BOUNDED_QUEUE_H_
#define AIB_SERVICE_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace aib {

/// Bounded multi-producer/multi-consumer queue with reject-on-full
/// admission control: producers never block and never grow the queue past
/// its capacity — a full queue refuses the item so the caller can push back
/// (QueryService turns that into a retriable Busy status). Consumers block
/// in Pop until an item arrives or the queue is closed *and* drained, so
/// closing still lets already-admitted work finish.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues `item` unless the queue is full or closed. Never blocks.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Dequeues the oldest item, blocking while the queue is open but empty.
  /// Returns nullopt once the queue is closed and fully drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Stops admission. Blocked consumers drain the backlog, then see
  /// nullopt. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace aib

#endif  // AIB_SERVICE_BOUNDED_QUEUE_H_
