#ifndef AIB_SERVICE_SHARED_SCAN_OPERATOR_H_
#define AIB_SERVICE_SHARED_SCAN_OPERATOR_H_

#include <string>
#include <vector>

#include "exec/operators.h"
#include "service/shared_scan_manager.h"

namespace aib {

/// The service layer's scan operator: a FullTableScan-shaped leaf that
/// rides the SharedScanManager's cooperative cursor instead of reading
/// pages itself, so K concurrent scans of one table cost about one pass.
/// Plugs into the same plan/Volcano machinery as the exec operators — the
/// QueryService attaches to plans at the scan-operator level.
///
/// The cooperative scan is a blocking one-shot; its matches are chunked
/// into capacity-bounded batches. Rid order differs from FullTableScan
/// only when the scan attached mid-pass.
///
/// Latching: like FullTableScan, Open takes every heap page stripe shared
/// and holds them until Close, so the pages the cooperative pass delivers
/// cannot be mutated mid-scan; DML of this table waits, other scans and
/// probes share.
class SharedScanOperator : public PhysicalOperator {
 public:
  SharedScanOperator(SharedScanManager* scans, const Table* table,
                     std::vector<ColumnPredicate> predicates);

  std::string Name() const override { return "SharedScan"; }
  std::string Describe() const override;
  Status Open(ExecContext* ctx) override;
  Result<bool> NextBatch(TupleBatch* out) override;
  Status Close() override;

  const SharedScanStats& scan_stats() const { return scan_stats_; }

 private:
  SharedScanManager* scans_;
  const Table* table_;
  std::vector<ColumnPredicate> predicates_;
  SharedScanStats scan_stats_;
  bool scanned_ = false;
  std::vector<Rid> pending_;
  size_t cursor_ = 0;
  PartitionLatchTable::LatchSet heap_latch_;
};

}  // namespace aib

#endif  // AIB_SERVICE_SHARED_SCAN_OPERATOR_H_
