#ifndef AIB_SERVICE_SHARED_SCAN_MANAGER_H_
#define AIB_SERVICE_SHARED_SCAN_MANAGER_H_

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>

#include "common/metrics.h"
#include "common/status.h"
#include "storage/table.h"

namespace aib {

class IoScheduler;

/// Per-caller statistics of one shared scan.
struct SharedScanStats {
  /// Pages delivered to this caller — always the table's page count on
  /// success.
  size_t pages_delivered = 0;
  /// Pages this caller read itself while driving the group cursor.
  size_t pages_driven = 0;
  /// Pages delivered while another scan was driving (reads this caller got
  /// for free).
  size_t pages_shared = 0;
  /// True when this scan joined a group that already had an active member.
  bool attached = false;
};

/// Cooperative table scans (after Cooperative Scans / Predictive Buffer
/// Management): concurrent full scans of the same table are merged into one
/// scan *group* with a single circular page cursor. The first arrival
/// becomes the driver and reads pages; every page is handed to all attached
/// members while it is resident, so K overlapping scans cost roughly one
/// pass of page reads instead of K and stop thrashing the buffer pool's LRU
/// against each other. A scan that attaches mid-pass rides the cursor to
/// the end, then the cursor wraps so it (or whoever is left) picks up the
/// pages it missed; each member detaches after seeing every page exactly
/// once. When the driver finishes its own pass, a still-unfinished member
/// takes over driving.
///
/// Thread-safe; the manager is passive (no threads of its own) — it
/// coordinates the calling threads, typically QueryService workers.
class SharedScanManager {
 public:
  /// `io`, when non-null, is the async prefetch pipeline: every member
  /// registers its remaining page range there (so the scheduler's
  /// relevance ordering sees the whole active scan set), and the driver
  /// issues a lookahead window of staging requests ahead of the cursor so
  /// the next pages are resident by the time they are read.
  explicit SharedScanManager(Metrics* metrics = nullptr,
                             IoScheduler* io = nullptr);

  SharedScanManager(const SharedScanManager&) = delete;
  SharedScanManager& operator=(const SharedScanManager&) = delete;

  /// Invokes `fn` for every live tuple of `table` exactly once, sharing
  /// page reads with any concurrent Scan of the same table. `fn` may be
  /// called from whichever member thread is currently driving, but always
  /// with the group latched, so it needs no synchronization of its own as
  /// long as it only touches caller-local state. Blocks until this
  /// caller's pass is complete.
  Status Scan(const Table& table,
              const std::function<void(const Rid&, const Tuple&)>& fn,
              SharedScanStats* stats = nullptr);

  /// Number of tables with an in-flight scan group (diagnostics).
  size_t ActiveGroups() const;

 private:
  struct Member;
  struct ScanGroup;

  /// Lookahead requests the driver keeps queued ahead of the cursor. Also
  /// the batching granularity of the driver's RequestRange calls, so the
  /// per-page scheduler cost is one lock + wakeup per kLookaheadPages.
  static constexpr size_t kLookaheadPages = 8;

  Metrics* metrics_;  // not owned; may be null
  IoScheduler* io_;   // not owned; may be null
  /// Cached handle of exec.scan_pages_served (null without metrics).
  std::atomic<int64_t>* served_counter_ = nullptr;
  mutable std::mutex mu_;
  std::map<const Table*, std::shared_ptr<ScanGroup>> groups_;
};

}  // namespace aib

#endif  // AIB_SERVICE_SHARED_SCAN_MANAGER_H_
