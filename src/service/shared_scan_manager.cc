#include "service/shared_scan_manager.h"

#include <algorithm>
#include <condition_variable>
#include <thread>
#include <vector>

#include "storage/io_scheduler.h"

namespace aib {

SharedScanManager::SharedScanManager(Metrics* metrics, IoScheduler* io)
    : metrics_(metrics), io_(io) {
  if (metrics_ != nullptr) {
    served_counter_ = metrics_->Counter(kMetricScanPagesServed);
  }
}

/// One caller inside a scan group. Lives on the calling thread's stack for
/// the duration of Scan and is unlinked before Scan returns.
struct SharedScanManager::Member {
  const std::function<void(const Rid&, const Tuple&)>* fn = nullptr;
  size_t pages_done = 0;
  size_t pages_driven = 0;
  size_t pages_shared = 0;
  bool done = false;
  Status status;
};

/// Shared state of all concurrent scans of one table. Guarded by `mu`;
/// erased from the manager's map when the last member leaves (a straggler
/// holding the shared_ptr just finishes its pass solo).
struct SharedScanManager::ScanGroup {
  explicit ScanGroup(size_t pages) : page_count(pages) {}

  const size_t page_count;
  std::mutex mu;
  std::condition_variable cv;
  /// Next page number the driver will read (circular).
  size_t cursor = 0;
  bool driver_active = false;
  /// Scans that announced an attach but do not hold `mu` yet. The driver
  /// pauses between pages while this is non-zero so a late scan is never
  /// starved out of the lock by the read loop (mutexes are unfair; the
  /// driver would otherwise re-acquire `mu` before a woken waiter runs).
  std::atomic<size_t> attach_pending{0};
  std::vector<Member*> members;
};

Status SharedScanManager::Scan(
    const Table& table, const std::function<void(const Rid&, const Tuple&)>& fn,
    SharedScanStats* stats) {
  const size_t page_count = table.PageCount();
  if (stats != nullptr) *stats = SharedScanStats{};
  if (page_count == 0) return Status::Ok();

  Member me;
  me.fn = &fn;

  // Register this member's full pass with the I/O scheduler: while the
  // group works through the circular cursor, every page of the table is
  // still ahead of some member, so the whole range stays relevant until
  // this member detaches.
  uint64_t io_ticket = 0;
  if (io_ != nullptr) {
    io_ticket = io_->RegisterScan(
        table.heap().PageIdAt(0),
        table.heap().PageIdAt(page_count - 1) + 1);
  }

  // Attach: find or create the table's group; lock order is manager mutex,
  // then group mutex (erase below takes them in the same order).
  std::shared_ptr<ScanGroup> group;
  {
    std::lock_guard<std::mutex> manager_lock(mu_);
    auto it = groups_.find(&table);
    if (it == groups_.end()) {
      it = groups_.emplace(&table, std::make_shared<ScanGroup>(page_count))
               .first;
    }
    group = it->second;
    group->attach_pending.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> group_lock(group->mu);
    if (!group->members.empty()) {
      if (stats != nullptr) stats->attached = true;
      if (metrics_ != nullptr) metrics_->Increment(kMetricSharedScanAttaches);
    }
    group->members.push_back(&me);
    group->attach_pending.fetch_sub(1, std::memory_order_relaxed);
    group->cv.notify_all();
  }

  {
    std::unique_lock<std::mutex> lock(group->mu);
    while (!me.done) {
      if (group->driver_active) {
        // Another member is reading pages for everyone; wait for our share.
        group->cv.wait(lock);
        continue;
      }
      group->driver_active = true;
      while (!me.done) {
        // Let announced attachers join before this page is read, so they
        // share it instead of paying for their own pass.
        while (group->attach_pending.load(std::memory_order_relaxed) > 0) {
          group->cv.wait(lock);
        }
        const size_t page = group->cursor % group->page_count;
        // Read the page with the group unlocked so late scans can attach
        // mid-pass; deliver to whoever is a member once the page is in.
        // The yield stands in for the I/O wait of a real disk read: it is
        // the window in which concurrent scans get scheduled and attach
        // (simulated reads are memcpy-fast, so without it one scan can
        // monopolize a core for its whole pass).
        lock.unlock();
        if (io_ != nullptr && page % kLookaheadPages == 0) {
          // Top up the lookahead window once per window, not per page:
          // batched RequestRange keeps the driver's amortized scheduler
          // cost at one lock + wakeup per kLookaheadPages pages. The wrap
          // is not chased past the end — those pages are re-requested when
          // the cursor wraps. The member registrations above supply the
          // demand weight.
          const size_t last =
              std::min(group->page_count - 1, page + kLookaheadPages);
          if (last > page) {
            io_->RequestRange(table.heap().PageIdAt(page + 1),
                              table.heap().PageIdAt(last) + 1);
          }
        }
        std::this_thread::yield();
        std::vector<std::pair<Rid, Tuple>> tuples;
        const Status read = table.heap().ForEachTupleOnPage(
            page, [&](const Rid& rid, const Tuple& tuple) {
              tuples.emplace_back(rid, tuple);
            });
        lock.lock();
        if (read.ok()) {
          for (Member* m : group->members) {
            if (m->done) continue;
            for (const auto& [rid, tuple] : tuples) (*m->fn)(rid, tuple);
          }
        }
        if (!read.ok()) {
          // A failed page read fails every in-flight member: they were all
          // promised this page.
          for (Member* m : group->members) {
            if (!m->done) {
              m->status = read;
              m->done = true;
            }
          }
        } else {
          int64_t delivered = 0;
          for (Member* m : group->members) {
            if (m->done) continue;
            ++m->pages_done;
            ++delivered;
            if (m == &me) {
              ++m->pages_driven;
            } else {
              ++m->pages_shared;
            }
            if (m->pages_done >= group->page_count) m->done = true;
          }
          if (served_counter_ != nullptr) {
            // One page served per member it was delivered to — the
            // numerator of the page-reuse ratio.
            served_counter_->fetch_add(delivered, std::memory_order_relaxed);
          }
          group->cursor = (group->cursor + 1) % group->page_count;
        }
        group->cv.notify_all();
      }
      group->driver_active = false;
      group->cv.notify_all();
    }
  }

  if (io_ticket != 0) io_->UnregisterScan(io_ticket);

  // Detach; the last member out removes the group from the map.
  {
    std::lock_guard<std::mutex> manager_lock(mu_);
    std::lock_guard<std::mutex> group_lock(group->mu);
    std::erase(group->members, &me);
    if (group->members.empty()) {
      auto it = groups_.find(&table);
      if (it != groups_.end() && it->second == group) groups_.erase(it);
    }
  }

  if (stats != nullptr) {
    stats->pages_delivered = me.pages_done;
    stats->pages_driven = me.pages_driven;
    stats->pages_shared = me.pages_shared;
  }
  if (metrics_ != nullptr && me.pages_shared > 0) {
    metrics_->Increment(kMetricSharedScanPagesShared,
                        static_cast<int64_t>(me.pages_shared));
  }
  return me.status;
}

size_t SharedScanManager::ActiveGroups() const {
  std::lock_guard<std::mutex> lock(mu_);
  return groups_.size();
}

}  // namespace aib
