#ifndef AIB_SERVICE_QUERY_SERVICE_H_
#define AIB_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/query_control.h"
#include "common/result.h"
#include "exec/executor.h"
#include "exec/morsel.h"
#include "service/bounded_queue.h"
#include "service/shared_scan_manager.h"

namespace aib {

struct QueryServiceOptions {
  /// Worker threads. 0 = std::thread::hardware_concurrency(). 1 gives the
  /// deterministic mode: FIFO execution, results identical to calling
  /// Executor::Execute in submission order.
  size_t num_workers = 4;
  /// Admission bound: Submit rejects with Busy once this many requests are
  /// queued (backpressure instead of unbounded growth).
  size_t queue_capacity = 256;
  /// Merge concurrent full table scans through the SharedScanManager.
  /// Applies to queries on columns with no partial index; adaptive
  /// indexing scans always run solo per buffer, serialized by the
  /// buffer's scan sentinel.
  bool shared_scans = true;
  /// Deadline applied to every query submitted without an explicit one.
  /// Zero = unbounded. The clock starts at submission, so queue time counts
  /// against the budget.
  std::chrono::milliseconds default_deadline{0};
  /// Whole-query retries when execution fails with a transient status or
  /// corruption. Re-running is always safe: the adaptive state is
  /// recovery-free and each run re-plans from current coverage.
  size_t max_query_retries = 3;
  /// Intra-query scan parallelism: workers (including the executing
  /// thread) a single scan fans its morsels out to. 0 or 1 = serial scans.
  /// The service owns the MorselDispatcher and wires it into the Executor;
  /// the dispatcher's helper pool is separate from num_workers on purpose
  /// (service workers can block on scan sentinels — see exec/morsel.h).
  /// Results and cost-model stats are identical to serial for any value.
  size_t scan_workers = 0;
  /// Options for the morsel-parallel scan path when scan_workers > 1.
  ParallelScanOptions parallel_scan;
};

/// Per-submission overrides for deadlines and cancellation.
struct SubmitOptions {
  /// Zero = use the service's default_deadline.
  std::chrono::milliseconds deadline{0};
  /// When set, flipping the token cancels the query cooperatively (before
  /// execution or at the next batch/page boundary).
  CancelToken cancel;
};

/// Point-in-time service counters (monotonic since construction).
struct QueryServiceStats {
  int64_t submitted = 0;
  int64_t rejected = 0;
  int64_t executed = 0;
  int64_t timed_out = 0;
  int64_t cancelled = 0;
  /// Whole-statement retries performed after transient/corruption failures.
  int64_t retried = 0;
  /// Queries answered through the degraded plain-scan path.
  int64_t degraded = 0;
  /// Successfully executed DML statements (subset of `executed`).
  int64_t dml_executed = 0;
};

/// The concurrent statement front-end: a worker thread pool over a bounded
/// admission queue. Callers Submit Query objects (reads) or Statement
/// objects (Select | Insert | Update | Delete) and collect results through
/// futures; workers execute through the (latched) Executor, full scans of
/// unindexed columns are merged by a SharedScanManager so overlapping
/// scans cost about one pass of page reads, and DML statements run under
/// the executor's exclusive statement latch — mixed read/write traffic is
/// fully supported with the same admission, deadline, cancel, and retry
/// machinery on both paths.
///
/// Tuner-driven coverage adaptation remains outside the service (facade
/// only; see Executor's thread-safety contract). Shutdown (or destruction)
/// stops admission — late Submits of queries and DML alike are rejected
/// with Cancelled — drains already-accepted requests, and joins the
/// workers, so every future obtained from Submit becomes ready.
class QueryService {
 public:
  /// Does not own `executor`, `table`, or `metrics`. The table must be the
  /// one the executor was built over.
  QueryService(Executor* executor, const Table* table,
               QueryServiceOptions options = {}, Metrics* metrics = nullptr);

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  ~QueryService();

  /// Enqueues `query`. Returns Busy when the admission queue is full (the
  /// caller may retry after a backoff) or Cancelled after Shutdown.
  Result<std::future<Result<QueryResult>>> Submit(const Query& query);

  /// Submit with an explicit deadline and/or cancellation token. A query
  /// whose deadline expires (queueing included) or whose token is set
  /// resolves its future with Timeout/Cancelled — the worker moves on, it
  /// never hangs on the query.
  Result<std::future<Result<QueryResult>>> Submit(const Query& query,
                                                  const SubmitOptions& submit);

  /// Enqueues a statement (read or DML) with the same admission contract
  /// as queries: Busy on a full queue, Cancelled after Shutdown, deadlines
  /// and cancel tokens honored, transient failures retried whole-statement
  /// (safe for DML: a failed statement has mutated nothing — see
  /// exec/dml_operators.h).
  Result<std::future<Result<StatementResult>>> Submit(
      const Statement& statement, const SubmitOptions& submit = {});

  /// Convenience: Submit and wait. Still goes through admission; callers
  /// sharing the service with Submit traffic see FIFO ordering.
  Result<QueryResult> Execute(const Query& query);

  /// Convenience: Submit a statement and wait.
  Result<StatementResult> ExecuteStatement(const Statement& statement);

  /// Stops admission, drains the queue, joins all workers. Idempotent;
  /// called by the destructor.
  void Shutdown();

  size_t num_workers() const { return workers_.size(); }
  const QueryServiceOptions& options() const { return options_; }
  QueryServiceStats stats() const;
  SharedScanManager& shared_scans() { return scans_; }

 private:
  /// One queued request. Either the legacy query API (resolves `promise`)
  /// or the statement API (resolves `statement_promise`), tagged by
  /// `is_statement`; `statement` carries the work in both cases (queries
  /// are wrapped as Select statements at submission).
  struct Request {
    Statement statement;
    QueryControl control;
    bool is_statement = false;
    std::promise<Result<QueryResult>> promise;
    std::promise<Result<StatementResult>> statement_promise;
  };

  void WorkerLoop();

  /// Admission: deadline/cancel setup + TryPush with the Busy/metrics
  /// bookkeeping shared by both Submit flavors.
  Status Enqueue(Request request);

  /// Executes one query on the calling worker: shared full scan for
  /// unindexed columns (when enabled), latched Executor::Execute otherwise.
  /// Retries transient/corruption failures up to max_query_retries times.
  Result<QueryResult> RunQuery(const Query& query,
                               const QueryControl* control);

  Result<QueryResult> RunQueryOnce(const Query& query,
                                   const QueryControl* control);

  /// Executes one statement: selects route through RunQuery (shared scans
  /// included); DML goes to Executor::ExecuteStatement with the same
  /// whole-statement retry policy.
  Result<StatementResult> RunStatement(const Statement& statement,
                                       const QueryControl* control);

  /// Tallies timed_out/cancelled/degraded for one finished request.
  void RecordOutcome(const Status& status, bool degraded);

  Executor* executor_;
  const Table* table_;
  QueryServiceOptions options_;
  Metrics* metrics_;  // not owned; may be null
  /// Owned helper pool for morsel-parallel scans (scan_workers > 1); wired
  /// into the Executor at construction, unwired at Shutdown.
  std::unique_ptr<MorselDispatcher> dispatcher_;
  SharedScanManager scans_;
  BoundedQueue<Request> queue_;
  /// Serializes concurrent Shutdown calls around the joins.
  std::mutex join_mu_;
  std::vector<std::thread> workers_;
  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> executed_{0};
  std::atomic<int64_t> timed_out_{0};
  std::atomic<int64_t> cancelled_{0};
  std::atomic<int64_t> retried_{0};
  std::atomic<int64_t> degraded_{0};
  std::atomic<int64_t> dml_executed_{0};
  std::atomic<bool> shutdown_{false};
};

}  // namespace aib

#endif  // AIB_SERVICE_QUERY_SERVICE_H_
