#include "service/query_service.h"

#include "service/shared_scan_operator.h"

namespace aib {

namespace {

/// Deadline/cancel wiring shared by both Submit flavors.
QueryControl MakeControl(const SubmitOptions& submit,
                         const QueryServiceOptions& options) {
  QueryControl control;
  const std::chrono::milliseconds budget =
      submit.deadline.count() > 0 ? submit.deadline : options.default_deadline;
  if (budget.count() > 0) {
    control.deadline = std::chrono::steady_clock::now() + budget;
  }
  control.cancel = submit.cancel;
  return control;
}

}  // namespace

QueryService::QueryService(Executor* executor, const Table* table,
                           QueryServiceOptions options, Metrics* metrics)
    : executor_(executor),
      table_(table),
      options_(options),
      metrics_(metrics),
      scans_(metrics, executor == nullptr ? nullptr
                                          : executor->io_scheduler()),
      queue_(options.queue_capacity) {
  if (options_.scan_workers > 1) {
    dispatcher_ =
        std::make_unique<MorselDispatcher>(options_.scan_workers - 1);
    executor_->SetParallelScan(dispatcher_.get(), options_.parallel_scan);
  }
  size_t workers = options_.num_workers;
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() { Shutdown(); }

void QueryService::Shutdown() {
  shutdown_.store(true, std::memory_order_relaxed);
  queue_.Close();
  std::lock_guard<std::mutex> lock(join_mu_);
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  if (dispatcher_ != nullptr) {
    // Unwire before tearing down the helper pool so the borrowed pointer
    // in the Executor never dangles for post-shutdown direct callers.
    executor_->SetParallelScan(nullptr);
    dispatcher_.reset();
  }
}

Result<std::future<Result<QueryResult>>> QueryService::Submit(
    const Query& query) {
  return Submit(query, SubmitOptions{});
}

Result<std::future<Result<QueryResult>>> QueryService::Submit(
    const Query& query, const SubmitOptions& submit) {
  if (shutdown_.load(std::memory_order_relaxed)) {
    return Status::Cancelled("query service is shut down");
  }
  Request request;
  request.statement = Statement::Select(query);
  request.control = MakeControl(submit, options_);
  std::future<Result<QueryResult>> future = request.promise.get_future();
  AIB_RETURN_IF_ERROR(Enqueue(std::move(request)));
  return future;
}

Result<std::future<Result<StatementResult>>> QueryService::Submit(
    const Statement& statement, const SubmitOptions& submit) {
  if (shutdown_.load(std::memory_order_relaxed)) {
    // Same contract for DML and reads: a statement arriving after shutdown
    // began is Cancelled, never silently dropped or half-admitted.
    return Status::Cancelled("query service is shut down");
  }
  Request request;
  request.statement = statement;
  request.is_statement = true;
  request.control = MakeControl(submit, options_);
  std::future<Result<StatementResult>> future =
      request.statement_promise.get_future();
  AIB_RETURN_IF_ERROR(Enqueue(std::move(request)));
  return future;
}

Status QueryService::Enqueue(Request request) {
  if (!queue_.TryPush(std::move(request))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_ != nullptr) metrics_->Increment(kMetricServiceRejected);
    return Status::Busy("admission queue full");
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_ != nullptr) metrics_->Increment(kMetricServiceSubmitted);
  return Status::Ok();
}

Result<QueryResult> QueryService::Execute(const Query& query) {
  AIB_ASSIGN_OR_RETURN(std::future<Result<QueryResult>> future,
                       Submit(query));
  return future.get();
}

Result<StatementResult> QueryService::ExecuteStatement(
    const Statement& statement) {
  AIB_ASSIGN_OR_RETURN(std::future<Result<StatementResult>> future,
                       Submit(statement, SubmitOptions{}));
  return future.get();
}

void QueryService::WorkerLoop() {
  while (std::optional<Request> request = queue_.Pop()) {
    // Pre-execution short-circuit: a request that timed out in the queue
    // or was cancelled before a worker reached it resolves immediately —
    // the worker spends nothing on it. These are the only Timeout/
    // Cancelled outcomes the *service* adds to the metrics registry; the
    // Executor accounts the ones that strike mid-execution.
    const Status admitted = request->control.Check();
    if (!admitted.ok() && metrics_ != nullptr) {
      metrics_->Increment(admitted.IsTimeout() ? kMetricQueriesTimedOut
                                               : kMetricQueriesCancelled);
    }
    if (request->is_statement) {
      Result<StatementResult> result =
          admitted.ok() ? RunStatement(request->statement, &request->control)
                        : Result<StatementResult>(admitted);
      RecordOutcome(result.ok() ? Status::Ok() : result.status(),
                    result.ok() && result.value().stats.degraded);
      if (result.ok() && request->statement.IsDml()) {
        dml_executed_.fetch_add(1, std::memory_order_relaxed);
        if (metrics_ != nullptr) {
          metrics_->Increment(kMetricServiceDmlExecuted);
        }
      }
      // Count before publishing: a caller woken by the future must
      // already see this request in stats().executed.
      executed_.fetch_add(1, std::memory_order_relaxed);
      if (metrics_ != nullptr) metrics_->Increment(kMetricServiceExecuted);
      request->statement_promise.set_value(std::move(result));
    } else {
      Result<QueryResult> result =
          admitted.ok()
              ? RunQuery(request->statement.query, &request->control)
              : Result<QueryResult>(admitted);
      RecordOutcome(result.ok() ? Status::Ok() : result.status(),
                    result.ok() && result.value().stats.degraded);
      executed_.fetch_add(1, std::memory_order_relaxed);
      if (metrics_ != nullptr) metrics_->Increment(kMetricServiceExecuted);
      request->promise.set_value(std::move(result));
    }
  }
}

void QueryService::RecordOutcome(const Status& status, bool degraded) {
  if (status.ok()) {
    if (degraded) degraded_.fetch_add(1, std::memory_order_relaxed);
  } else if (status.IsTimeout()) {
    timed_out_.fetch_add(1, std::memory_order_relaxed);
  } else if (status.IsCancelled()) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
  }
}

Result<StatementResult> QueryService::RunStatement(
    const Statement& statement, const QueryControl* control) {
  if (statement.kind == StatementKind::kSelect) {
    AIB_ASSIGN_OR_RETURN(QueryResult query_result,
                         RunQuery(statement.query, control));
    StatementResult result;
    result.rids = std::move(query_result.rids);
    result.stats = query_result.stats;
    return result;
  }
  // DML: same whole-statement retry policy as queries. Safe because the
  // operators expose only their pre-mutation read phase to faults — a
  // failed statement has mutated nothing (exec/dml_operators.h).
  Result<StatementResult> result =
      executor_->ExecuteStatement(statement, control);
  for (size_t retry = 0; retry < options_.max_query_retries; ++retry) {
    if (result.ok()) break;
    const Status& status = result.status();
    if (!status.IsTransient() && !status.IsCorruption()) break;
    if (control != nullptr && !control->Check().ok()) break;
    retried_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::yield();
    result = executor_->ExecuteStatement(statement, control);
  }
  return result;
}

Result<QueryResult> QueryService::RunQuery(const Query& query,
                                           const QueryControl* control) {
  Result<QueryResult> result = RunQueryOnce(query, control);
  for (size_t retry = 0; retry < options_.max_query_retries; ++retry) {
    if (result.ok()) break;
    const Status& status = result.status();
    // Transient shortages and corruption are retried whole-query: the
    // recovery-free property makes a re-plan from current coverage always
    // valid, and fault redraws are independent. Timeout/Cancelled are
    // final.
    if (!status.IsTransient() && !status.IsCorruption()) break;
    if (control != nullptr && !control->Check().ok()) break;
    retried_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::yield();
    result = RunQueryOnce(query, control);
  }
  return result;
}

Result<QueryResult> QueryService::RunQueryOnce(const Query& query,
                                               const QueryControl* control) {
  if (options_.shared_scans) {
    bool any_indexed = false;
    for (const ColumnPredicate& pred : query.AllPredicates()) {
      if (executor_->GetIndex(pred.column) != nullptr) {
        any_indexed = true;
        break;
      }
    }
    if (!any_indexed) {
      // Fully unindexed conjunction: a guaranteed full table scan, the
      // case where concurrent queries would otherwise each pay a whole
      // pass. Plan it with the cooperative scan operator in place of
      // FullTableScan; the result matches Executor::FullScan (same stats
      // shape, same cost), rid order differing only when the scan
      // attached mid-pass.
      PhysicalPlan plan(std::make_unique<SharedScanOperator>(
                            &scans_, table_, query.AllPredicates()),
                        table_);
      // This path bypasses Executor::ExecutePlan, so it must hold the
      // statement membrane itself (shared, like every statement) to stay
      // excluded from quiesce points; mutual exclusion against DML comes
      // from the heap stripes the shared-scan operator latches.
      std::shared_lock<std::shared_mutex> stmt_latch(
          executor_->statement_latch());
      return plan.Run(executor_->cost_model(), control);
    }
  }
  return executor_->Execute(query, control);
}

QueryServiceStats QueryService::stats() const {
  QueryServiceStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.executed = executed_.load(std::memory_order_relaxed);
  stats.timed_out = timed_out_.load(std::memory_order_relaxed);
  stats.cancelled = cancelled_.load(std::memory_order_relaxed);
  stats.retried = retried_.load(std::memory_order_relaxed);
  stats.degraded = degraded_.load(std::memory_order_relaxed);
  stats.dml_executed = dml_executed_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace aib
