#include "service/query_service.h"

#include "service/shared_scan_operator.h"

namespace aib {

QueryService::QueryService(Executor* executor, const Table* table,
                           QueryServiceOptions options, Metrics* metrics)
    : executor_(executor),
      table_(table),
      options_(options),
      metrics_(metrics),
      scans_(metrics),
      queue_(options.queue_capacity) {
  size_t workers = options_.num_workers;
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() { Shutdown(); }

void QueryService::Shutdown() {
  shutdown_.store(true, std::memory_order_relaxed);
  queue_.Close();
  std::lock_guard<std::mutex> lock(join_mu_);
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

Result<std::future<Result<QueryResult>>> QueryService::Submit(
    const Query& query) {
  if (shutdown_.load(std::memory_order_relaxed)) {
    return Status::InvalidArgument("query service is shut down");
  }
  Request request;
  request.query = query;
  std::future<Result<QueryResult>> future = request.promise.get_future();
  if (!queue_.TryPush(std::move(request))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_ != nullptr) metrics_->Increment(kMetricServiceRejected);
    return Status::Busy("admission queue full");
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_ != nullptr) metrics_->Increment(kMetricServiceSubmitted);
  return future;
}

Result<QueryResult> QueryService::Execute(const Query& query) {
  AIB_ASSIGN_OR_RETURN(std::future<Result<QueryResult>> future,
                       Submit(query));
  return future.get();
}

void QueryService::WorkerLoop() {
  while (std::optional<Request> request = queue_.Pop()) {
    Result<QueryResult> result = RunQuery(request->query);
    // Count before publishing: a caller woken by the future must already
    // see this query in stats().executed.
    executed_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_ != nullptr) metrics_->Increment(kMetricServiceExecuted);
    request->promise.set_value(std::move(result));
  }
}

Result<QueryResult> QueryService::RunQuery(const Query& query) {
  if (options_.shared_scans) {
    bool any_indexed = false;
    for (const ColumnPredicate& pred : query.AllPredicates()) {
      if (executor_->GetIndex(pred.column) != nullptr) {
        any_indexed = true;
        break;
      }
    }
    if (!any_indexed) {
      // Fully unindexed conjunction: a guaranteed full table scan, the
      // case where concurrent queries would otherwise each pay a whole
      // pass. Plan it with the cooperative scan operator in place of
      // FullTableScan; the result matches Executor::FullScan (same stats
      // shape, same cost), rid order differing only when the scan
      // attached mid-pass.
      PhysicalPlan plan(std::make_unique<SharedScanOperator>(
                            &scans_, table_, query.AllPredicates()),
                        table_);
      return plan.Run(executor_->cost_model());
    }
  }
  return executor_->Execute(query);
}

QueryServiceStats QueryService::stats() const {
  QueryServiceStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.executed = executed_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace aib
