#ifndef AIB_INDEX_PARTIAL_INDEX_H_
#define AIB_INDEX_PARTIAL_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "btree/index_structure.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/types.h"
#include "index/value_coverage.h"
#include "storage/table.h"

namespace aib {

/// A partial secondary index on one integer column: an index structure
/// restricted to the values in a ValueCoverage (§II). Tuples whose key value
/// is outside the coverage are not indexed and, by themselves, force table
/// scans.
///
/// The index models the paper's *disk-based* partial index: the adaptation
/// cost accounting (entries added/removed) feeds the control-loop-delay
/// experiment (Fig. 1), where changing the coverage is the expensive
/// operation the Index Buffer is designed to paper over.
///
/// Concurrency: the entry structure is self-synchronized — mutators
/// (Add/Remove/Update/Build/AddValue/RemoveValue) take an internal writer
/// lock and bump the version counter; Lookup/Scan/EntryCount take it
/// shared. The version counter drives the optimistic probe protocol (see
/// PartialIndexProbe): read version(), probe, validate version() is
/// unchanged — if it moved, a mutation may have raced the probe and the
/// probe retries. Covers() stays lock-free on purpose: the coverage is
/// only mutated by tuner adaptation, which runs under the executor's
/// exclusive statement membrane with no statements in flight.
class PartialIndex {
 public:
  /// `metrics` may be null. The index does not own `table`.
  PartialIndex(const Table* table, ColumnId column, ValueCoverage coverage,
               IndexStructureKind structure = IndexStructureKind::kBTree,
               Metrics* metrics = nullptr);

  ColumnId column() const { return column_; }
  const ValueCoverage& coverage() const { return coverage_; }
  const Table& table() const { return *table_; }

  /// Scans the table and indexes every covered tuple. Called once after
  /// loading; DML afterwards goes through maintenance (Table I).
  Status Build();

  /// True iff a tuple with key `v` would be covered ("t ∈ IX" in the
  /// paper's notation is value-based).
  bool Covers(Value v) const { return coverage_.Covers(v); }

  /// Probe for a covered value. Charges one index probe.
  void Lookup(Value v, std::vector<Rid>* out) const;

  /// Ordered scan of covered entries in [lo, hi].
  void Scan(Value lo, Value hi,
            const std::function<void(Value, const Rid&)>& fn) const;

  // --- DML hooks (IX column of Table I) ---
  void Add(Value v, const Rid& rid);
  void Remove(Value v, const Rid& rid);
  void Update(Value old_v, const Rid& old_rid, Value new_v,
              const Rid& new_rid);

  // --- Adaptation (used by IndexTuner) ---

  /// Extends the coverage by value `v` and indexes all `rids` (the matching
  /// tuples, found by the caller's scan). Returns entries added.
  size_t AddValue(Value v, const std::vector<Rid>& rids);

  /// Shrinks the coverage by value `v`, dropping its entries. Returns the
  /// removed rids (the Index Buffer maintenance needs them, §III Table I
  /// analog for adaptations).
  std::vector<Rid> RemoveValue(Value v);

  size_t EntryCount() const;

  /// Mutation counter for optimistic reads: bumped by every entry mutation
  /// (before the writer lock is released). A probe that observes the same
  /// version before and after its read saw a consistent structure.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// The structure kind this index was created with (snapshot metadata).
  IndexStructureKind structure_kind() const { return kind_; }

  /// Unsynchronized view for quiesced contexts only (consistency checks,
  /// snapshots) — callers must hold the executor membrane exclusively or
  /// otherwise exclude mutators.
  const IndexStructure& structure() const { return *structure_; }

 private:
  const Table* table_;
  ColumnId column_;
  ValueCoverage coverage_;
  IndexStructureKind kind_;
  std::unique_ptr<IndexStructure> structure_;
  Metrics* metrics_;

  mutable std::shared_mutex mu_;
  std::atomic<uint64_t> version_{0};
};

}  // namespace aib

#endif  // AIB_INDEX_PARTIAL_INDEX_H_
