#ifndef AIB_INDEX_INDEX_TUNER_H_
#define AIB_INDEX_INDEX_TUNER_H_

#include <deque>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "index/partial_index.h"

namespace aib {

struct IndexTunerOptions {
  /// Length of the monitoring window, in queries (paper Fig. 1: 20).
  size_t window_size = 20;
  /// A value is indexed once it was queried at least this often within the
  /// window (paper Fig. 1: 6).
  int index_threshold = 6;
  /// Maximum number of distinct values the partial index may cover; least
  /// recently used values are evicted beyond it. 0 = unlimited.
  size_t max_indexed_values = 0;
};

/// Outcome of one tuner step, consumed by the Fig. 1 bench.
struct TunerReport {
  /// Whether the query hit the partial index *before* any adaptation.
  bool hit = false;
  std::vector<Value> values_added;
  std::vector<Value> values_evicted;
  size_t entries_added = 0;
  size_t entries_removed = 0;
};

/// The online partial-index tuning mechanism the paper simulates in Fig. 1:
/// a sliding monitoring window over queried values, a query-count threshold
/// for indexing a value, and LRU eviction of indexed values. Its inherent
/// control-loop delay (threshold × repeat queries before any adaptation) is
/// the problem the Index Buffer addresses.
class IndexTuner {
 public:
  /// Finds the rids of all tuples with a given key value — the "adaptation
  /// scan" a real system performs when extending a partial index.
  using RidLookupFn = std::function<std::vector<Rid>(Value)>;

  /// Called after the tuner adds (added=true) or evicts (added=false) a
  /// value, with the affected rids. The Database uses this to keep Index
  /// Buffer page counters consistent with the new coverage.
  using AdaptCallback =
      std::function<void(Value, const std::vector<Rid>&, bool added)>;

  /// Does not own `index`. Seeds the LRU order with the currently covered
  /// values (in ascending order) when eviction is enabled.
  IndexTuner(PartialIndex* index, IndexTunerOptions options,
             RidLookupFn rid_lookup);

  void SetAdaptCallback(AdaptCallback callback) {
    adapt_callback_ = std::move(callback);
  }

  /// Observes one query for value `v`, possibly adapting the index.
  TunerReport OnQuery(Value v);

  /// Distinct values currently covered by the index (tracked via LRU).
  size_t IndexedValueCount() const { return lru_pos_.size(); }

  const IndexTunerOptions& options() const { return options_; }

 private:
  void TouchLru(Value v);
  void InsertLru(Value v);

  PartialIndex* index_;
  IndexTunerOptions options_;
  RidLookupFn rid_lookup_;
  AdaptCallback adapt_callback_;

  std::deque<Value> window_;
  std::unordered_map<Value, int> window_counts_;

  /// Most recently used at the front.
  std::list<Value> lru_;
  std::unordered_map<Value, std::list<Value>::iterator> lru_pos_;
};

}  // namespace aib

#endif  // AIB_INDEX_INDEX_TUNER_H_
