#include "index/value_coverage.h"

#include <cassert>
#include <limits>
#include <sstream>

namespace aib {

ValueCoverage ValueCoverage::Range(Value lo, Value hi) {
  ValueCoverage coverage;
  coverage.AddRange(lo, hi);
  return coverage;
}

std::map<Value, Value>::const_iterator ValueCoverage::FindInterval(
    Value v) const {
  auto it = intervals_.upper_bound(v);
  if (it == intervals_.begin()) return intervals_.end();
  --it;
  return it->second >= v ? it : intervals_.end();
}

bool ValueCoverage::Covers(Value v) const {
  return FindInterval(v) != intervals_.end();
}

bool ValueCoverage::CoversRange(Value lo, Value hi) const {
  assert(lo <= hi);
  auto it = FindInterval(lo);
  return it != intervals_.end() && it->second >= hi;
}

bool ValueCoverage::IntersectsRange(Value lo, Value hi) const {
  assert(lo <= hi);
  // First interval starting after lo; the interval containing lo, if any,
  // is its predecessor.
  auto it = intervals_.upper_bound(lo);
  if (it != intervals_.begin() && std::prev(it)->second >= lo) return true;
  return it != intervals_.end() && it->first <= hi;
}

bool ValueCoverage::Add(Value v) {
  if (Covers(v)) return false;
  AddRange(v, v);
  return true;
}

void ValueCoverage::AddRange(Value lo, Value hi) {
  assert(lo <= hi);
  // Extend [lo, hi] over any interval it touches or abuts, then erase them.
  auto it = intervals_.upper_bound(lo);
  if (it != intervals_.begin()) {
    auto prev = std::prev(it);
    // Abutment check `prev->second + 1 >= lo` without overflow.
    if (prev->second >= lo || prev->second + static_cast<int64_t>(1) >= lo) {
      it = prev;
    }
  }
  while (it != intervals_.end()) {
    const int64_t gap_start = static_cast<int64_t>(it->first) - 1;
    if (gap_start > hi) break;  // disjoint and non-adjacent on the right
    lo = std::min(lo, it->first);
    hi = std::max(hi, it->second);
    it = intervals_.erase(it);
  }
  intervals_[lo] = hi;
}

bool ValueCoverage::Remove(Value v) {
  auto it = FindInterval(v);
  if (it == intervals_.end()) return false;
  const Value lo = it->first;
  const Value hi = it->second;
  intervals_.erase(lo);
  if (lo < v) intervals_[lo] = v - 1;
  if (hi > v) intervals_[v + 1] = hi;
  return true;
}

uint64_t ValueCoverage::CoveredValueCount() const {
  uint64_t count = 0;
  for (const auto& [lo, hi] : intervals_) {
    count += static_cast<uint64_t>(static_cast<int64_t>(hi) -
                                   static_cast<int64_t>(lo) + 1);
  }
  return count;
}

std::string ValueCoverage::ToString() const {
  std::ostringstream out;
  bool first = true;
  for (const auto& [lo, hi] : intervals_) {
    if (!first) out << ' ';
    out << '[' << lo << ',' << hi << ']';
    first = false;
  }
  return out.str();
}

}  // namespace aib
