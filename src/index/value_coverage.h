#ifndef AIB_INDEX_VALUE_COVERAGE_H_
#define AIB_INDEX_VALUE_COVERAGE_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/types.h"

namespace aib {

/// The set of key values covered by a partial index, stored as disjoint
/// maximal inclusive intervals. A partial index covers a *value* set (§II:
/// "partial indexes cover only a subset of the values of a column"); a tuple
/// is covered iff its key value is covered.
///
/// Adding and removing single values (the granularity at which the online
/// tuner adapts, §I/Fig. 1) merge and split intervals as needed.
class ValueCoverage {
 public:
  ValueCoverage() = default;

  /// Coverage of a single inclusive range [lo, hi].
  static ValueCoverage Range(Value lo, Value hi);

  bool Covers(Value v) const;

  /// True if every value in [lo, hi] is covered.
  bool CoversRange(Value lo, Value hi) const;

  /// True if at least one value in [lo, hi] is covered.
  bool IntersectsRange(Value lo, Value hi) const;

  /// Adds value `v`; no-op if already covered. Returns true if it was new.
  bool Add(Value v);

  /// Adds the whole inclusive range [lo, hi].
  void AddRange(Value lo, Value hi);

  /// Removes value `v`; no-op if not covered. Returns true if removed.
  bool Remove(Value v);

  /// Number of covered values (sum of interval widths).
  uint64_t CoveredValueCount() const;

  /// Number of maximal intervals.
  size_t IntervalCount() const { return intervals_.size(); }

  bool Empty() const { return intervals_.empty(); }

  void Clear() { intervals_.clear(); }

  /// Calls fn(lo, hi) for each maximal interval in ascending order.
  template <typename Fn>
  void ForEachInterval(Fn&& fn) const {
    for (const auto& [lo, hi] : intervals_) fn(lo, hi);
  }

  /// "[1,5000] [7000,7000]" style rendering for logs and tests.
  std::string ToString() const;

 private:
  /// Iterator to the interval containing v, or end().
  std::map<Value, Value>::const_iterator FindInterval(Value v) const;

  /// start -> end (inclusive), disjoint, non-adjacent (always merged).
  std::map<Value, Value> intervals_;
};

}  // namespace aib

#endif  // AIB_INDEX_VALUE_COVERAGE_H_
