#include "index/partial_index.h"

#include <cassert>
#include <mutex>

namespace aib {

PartialIndex::PartialIndex(const Table* table, ColumnId column,
                           ValueCoverage coverage, IndexStructureKind kind,
                           Metrics* metrics)
    : table_(table),
      column_(column),
      coverage_(std::move(coverage)),
      kind_(kind),
      structure_(CreateIndexStructure(kind)),
      metrics_(metrics) {
  assert(table_->schema().column(column_).type == ColumnType::kInt32);
}

Status PartialIndex::Build() {
  std::unique_lock lock(mu_);
  structure_->Clear();
  version_.fetch_add(1, std::memory_order_release);
  return table_->heap().ForEachTuple([&](const Rid& rid, const Tuple& tuple) {
    const Value v = tuple.IntValue(table_->schema(), column_);
    if (coverage_.Covers(v)) {
      structure_->Insert(v, rid);
      if (metrics_ != nullptr) metrics_->Increment(kMetricIndexInserts);
    }
  });
}

void PartialIndex::Lookup(Value v, std::vector<Rid>* out) const {
  if (metrics_ != nullptr) metrics_->Increment(kMetricIndexProbes);
  std::shared_lock lock(mu_);
  structure_->Lookup(v, out);
}

void PartialIndex::Scan(Value lo, Value hi,
                        const std::function<void(Value, const Rid&)>& fn)
    const {
  if (metrics_ != nullptr) metrics_->Increment(kMetricIndexProbes);
  std::shared_lock lock(mu_);
  structure_->Scan(lo, hi, fn);
}

void PartialIndex::Add(Value v, const Rid& rid) {
  assert(coverage_.Covers(v));
  {
    std::unique_lock lock(mu_);
    structure_->Insert(v, rid);
    version_.fetch_add(1, std::memory_order_release);
  }
  if (metrics_ != nullptr) metrics_->Increment(kMetricIndexInserts);
}

void PartialIndex::Remove(Value v, const Rid& rid) {
  {
    std::unique_lock lock(mu_);
    structure_->Remove(v, rid);
    version_.fetch_add(1, std::memory_order_release);
  }
  if (metrics_ != nullptr) metrics_->Increment(kMetricIndexRemoves);
}

void PartialIndex::Update(Value old_v, const Rid& old_rid, Value new_v,
                          const Rid& new_rid) {
  {
    std::unique_lock lock(mu_);
    structure_->Remove(old_v, old_rid);
    structure_->Insert(new_v, new_rid);
    version_.fetch_add(1, std::memory_order_release);
  }
  if (metrics_ != nullptr) {
    metrics_->Increment(kMetricIndexRemoves);
    metrics_->Increment(kMetricIndexInserts);
  }
}

size_t PartialIndex::AddValue(Value v, const std::vector<Rid>& rids) {
  {
    std::unique_lock lock(mu_);
    coverage_.Add(v);
    for (const Rid& rid : rids) structure_->Insert(v, rid);
    version_.fetch_add(1, std::memory_order_release);
  }
  if (metrics_ != nullptr) {
    metrics_->Increment(kMetricIndexInserts,
                        static_cast<int64_t>(rids.size()));
  }
  return rids.size();
}

std::vector<Rid> PartialIndex::RemoveValue(Value v) {
  std::vector<Rid> removed;
  {
    std::unique_lock lock(mu_);
    structure_->Lookup(v, &removed);
    structure_->RemoveKey(v);
    coverage_.Remove(v);
    version_.fetch_add(1, std::memory_order_release);
  }
  if (metrics_ != nullptr) {
    metrics_->Increment(kMetricIndexRemoves,
                        static_cast<int64_t>(removed.size()));
  }
  return removed;
}

size_t PartialIndex::EntryCount() const {
  std::shared_lock lock(mu_);
  return structure_->EntryCount();
}

}  // namespace aib
