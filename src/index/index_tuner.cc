#include "index/index_tuner.h"

#include <cassert>

namespace aib {

IndexTuner::IndexTuner(PartialIndex* index, IndexTunerOptions options,
                       RidLookupFn rid_lookup)
    : index_(index),
      options_(options),
      rid_lookup_(std::move(rid_lookup)) {
  // Seed the LRU with the initial coverage so pre-covered values are
  // evictable. Ascending insertion; the least value ends up coldest.
  index_->coverage().ForEachInterval([&](Value lo, Value hi) {
    for (int64_t v = lo; v <= hi; ++v) {
      InsertLru(static_cast<Value>(v));
    }
  });
}

void IndexTuner::InsertLru(Value v) {
  assert(lru_pos_.find(v) == lru_pos_.end());
  lru_.push_front(v);
  lru_pos_[v] = lru_.begin();
}

void IndexTuner::TouchLru(Value v) {
  auto it = lru_pos_.find(v);
  if (it == lru_pos_.end()) return;
  lru_.splice(lru_.begin(), lru_, it->second);
}

TunerReport IndexTuner::OnQuery(Value v) {
  TunerReport report;
  report.hit = index_->Covers(v);

  // Monitoring window update.
  window_.push_back(v);
  ++window_counts_[v];
  if (window_.size() > options_.window_size) {
    const Value expired = window_.front();
    window_.pop_front();
    if (--window_counts_[expired] == 0) window_counts_.erase(expired);
  }

  if (report.hit) {
    TouchLru(v);
    return report;
  }

  // Adaptation decision: index the value once it has shown enough potential
  // cost reduction in the recent past (paper Fig. 1: >= 6 hits in the last
  // 20 queries).
  auto count_it = window_counts_.find(v);
  if (count_it == window_counts_.end() ||
      count_it->second < options_.index_threshold) {
    return report;
  }

  const std::vector<Rid> rids = rid_lookup_ ? rid_lookup_(v)
                                            : std::vector<Rid>{};
  report.entries_added += index_->AddValue(v, rids);
  report.values_added.push_back(v);
  InsertLru(v);
  if (adapt_callback_) adapt_callback_(v, rids, /*added=*/true);

  // LRU eviction beyond capacity.
  if (options_.max_indexed_values > 0) {
    while (lru_pos_.size() > options_.max_indexed_values) {
      const Value victim = lru_.back();
      lru_.pop_back();
      lru_pos_.erase(victim);
      const std::vector<Rid> removed = index_->RemoveValue(victim);
      report.entries_removed += removed.size();
      report.values_evicted.push_back(victim);
      if (adapt_callback_) adapt_callback_(victim, removed, /*added=*/false);
    }
  }
  return report;
}

}  // namespace aib
