#ifndef AIB_BASELINE_SHINOBI_H_
#define AIB_BASELINE_SHINOBI_H_

#include <deque>
#include <list>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "btree/index_structure.h"
#include "common/status.h"
#include "exec/query.h"

namespace aib {

/// A simplified Shinobi-style comparator (Wu & Madden, "Partitioning
/// techniques for fine-grained indexing", ICDE'11 — the paper's main
/// related-work baseline, §VI).
///
/// Shinobi's approach: physically partition the table into *interesting*
/// and *uninteresting* tuples and fully index the interesting partition.
/// A query that misses the indexes scans only the uninteresting partition
/// (all indexed tuples are skipped wholesale). The paper's critique, which
/// this baseline exists to measure: "all indexes of the table index the
/// same set of tuples" — a tuple promoted because one column is hot gets
/// indexed in *every* column's index, and moving tuples between partitions
/// is physical I/O.
///
/// The model here captures exactly those costs:
///   - tuples live in a hot (interesting) or cold region; the cold region
///     is assumed perfectly repacked, so a cold scan costs
///     ceil(cold_tuples / tuples_per_page) page reads;
///   - promoting/demoting a value moves all its tuples (move I/O, charged
///     per page rewritten on both sides) and adds/removes index entries in
///     ALL column indexes;
///   - promotion uses the same monitoring-window policy as the Index
///     Buffer side's tuner (window / threshold / LRU capacity), so both
///     systems see identical adaptation opportunities.
class ShinobiBaseline {
 public:
  struct Options {
    size_t tuples_per_page = 28;
    /// Monitoring window and threshold of the promotion policy.
    size_t window_size = 20;
    int promote_threshold = 6;
    /// Maximum hot tuples; LRU values are demoted beyond it. 0 = unlimited.
    size_t max_hot_tuples = 0;
    /// Cost of scanning/rewriting one page, in cost units.
    double page_cost = 1.0;
    double index_probe_cost = 0.01;
  };

  /// Per-query outcome in the shared cost vocabulary.
  struct ShinobiStats {
    bool hot_hit = false;
    size_t cold_pages_scanned = 0;
    size_t tuples_moved = 0;
    double query_cost = 0;
    double move_cost = 0;
  };

  /// `columns` int columns; tuples are added via AddTuple.
  ShinobiBaseline(size_t columns, Options options);

  /// Loads one tuple (values per column). All tuples start cold.
  void AddTuple(const std::vector<Value>& values);

  /// Executes a point query on `column` = `value`, applying the promotion
  /// policy afterwards.
  ShinobiStats Execute(ColumnId column, Value value);

  /// Renders the last Execute's access path in the same tree vocabulary as
  /// ExplainPlan(): a hot hit is an index probe over the interesting
  /// partition, a miss adds the cold-partition scan leg, and a migration
  /// shows up as a PartitionMove node. Lets benches and tools print the
  /// baseline's plan side by side with AIB plans. Empty before the first
  /// Execute.
  std::string ExplainLast() const;

  // --- Accounting -----------------------------------------------------------

  size_t TupleCount() const { return tuples_.size(); }
  size_t HotTupleCount() const { return hot_count_; }
  size_t ColdPageCount() const;
  /// Total entries across all column indexes (every hot tuple appears in
  /// every index — the memory cost the paper's critique targets).
  size_t IndexEntryCount() const;
  double TotalMoveCost() const { return total_move_cost_; }

 private:
  struct TupleRec {
    std::vector<Value> values;
    /// Number of currently-promoted values covering this tuple; the tuple
    /// lives in the hot partition while > 0 (a tuple can be interesting
    /// through several columns at once).
    uint16_t hot_refs = 0;
  };

  /// Moves every tuple whose `column` value equals `value` to/from the hot
  /// region; returns pages rewritten.
  size_t MoveValue(ColumnId column, Value value, bool to_hot,
                   size_t* tuples_moved);

  void TouchLru(ColumnId column, Value value);
  void DemoteBeyondCapacity(ShinobiStats* stats);

  size_t columns_;
  Options options_;
  /// Snapshot for ExplainLast: the last query and its outcome.
  ColumnId last_column_ = 0;
  Value last_value_ = 0;
  size_t last_index_matches_ = 0;
  ShinobiStats last_stats_;
  bool has_last_ = false;
  std::vector<TupleRec> tuples_;
  /// One full index per column over the hot tuples (keyed by tuple index
  /// packed into a Rid page/slot pair).
  std::vector<std::unique_ptr<IndexStructure>> indexes_;
  size_t hot_count_ = 0;
  double total_move_cost_ = 0;

  /// Promotion policy state: monitoring window over (column, value).
  std::deque<std::pair<ColumnId, Value>> window_;
  std::map<std::pair<ColumnId, Value>, int> window_counts_;
  /// Hot values in LRU order (front = most recent) with their column.
  std::list<std::pair<ColumnId, Value>> hot_lru_;
  std::map<std::pair<ColumnId, Value>, std::list<std::pair<ColumnId, Value>>::iterator>
      hot_pos_;
};

}  // namespace aib

#endif  // AIB_BASELINE_SHINOBI_H_
