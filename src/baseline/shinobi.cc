#include "baseline/shinobi.h"

#include <cassert>
#include <cmath>
#include <sstream>

namespace aib {

namespace {

Rid RidOf(size_t tuple_index) {
  return Rid{static_cast<PageId>(tuple_index / 65536),
             static_cast<SlotId>(tuple_index % 65536)};
}

}  // namespace

ShinobiBaseline::ShinobiBaseline(size_t columns, Options options)
    : columns_(columns), options_(options) {
  assert(columns_ > 0);
  assert(options_.tuples_per_page > 0);
  indexes_.reserve(columns_);
  for (size_t c = 0; c < columns_; ++c) {
    indexes_.push_back(CreateIndexStructure(IndexStructureKind::kBTree));
  }
}

void ShinobiBaseline::AddTuple(const std::vector<Value>& values) {
  assert(values.size() == columns_);
  TupleRec rec;
  rec.values = values;
  tuples_.push_back(std::move(rec));
}

size_t ShinobiBaseline::ColdPageCount() const {
  const size_t cold = tuples_.size() - hot_count_;
  return (cold + options_.tuples_per_page - 1) / options_.tuples_per_page;
}

size_t ShinobiBaseline::IndexEntryCount() const {
  size_t entries = 0;
  for (const auto& index : indexes_) entries += index->EntryCount();
  return entries;
}

size_t ShinobiBaseline::MoveValue(ColumnId column, Value value, bool to_hot,
                                  size_t* tuples_moved) {
  size_t moved = 0;
  for (size_t i = 0; i < tuples_.size(); ++i) {
    TupleRec& rec = tuples_[i];
    if (rec.values[column] != value) continue;
    if (to_hot) {
      if (rec.hot_refs++ == 0) {
        ++hot_count_;
        ++moved;
        // Shinobi's cost: the promoted tuple enters EVERY column's index.
        for (size_t c = 0; c < columns_; ++c) {
          indexes_[c]->Insert(rec.values[c], RidOf(i));
        }
      }
    } else {
      assert(rec.hot_refs > 0);
      if (--rec.hot_refs == 0) {
        --hot_count_;
        ++moved;
        for (size_t c = 0; c < columns_; ++c) {
          indexes_[c]->Remove(rec.values[c], RidOf(i));
        }
      }
    }
  }
  if (tuples_moved != nullptr) *tuples_moved += moved;
  // Physical repartitioning: the moved tuples' pages are rewritten on both
  // sides.
  return 2 * ((moved + options_.tuples_per_page - 1) /
              options_.tuples_per_page);
}

void ShinobiBaseline::TouchLru(ColumnId column, Value value) {
  auto it = hot_pos_.find({column, value});
  if (it == hot_pos_.end()) return;
  hot_lru_.splice(hot_lru_.begin(), hot_lru_, it->second);
}

void ShinobiBaseline::DemoteBeyondCapacity(ShinobiStats* stats) {
  if (options_.max_hot_tuples == 0) return;
  while (hot_count_ > options_.max_hot_tuples && !hot_lru_.empty()) {
    const auto [column, value] = hot_lru_.back();
    hot_lru_.pop_back();
    hot_pos_.erase({column, value});
    const size_t pages =
        MoveValue(column, value, /*to_hot=*/false, &stats->tuples_moved);
    const double cost = static_cast<double>(pages) * options_.page_cost;
    stats->move_cost += cost;
    total_move_cost_ += cost;
  }
}

ShinobiBaseline::ShinobiStats ShinobiBaseline::Execute(ColumnId column,
                                                       Value value) {
  assert(column < columns_);
  ShinobiStats stats;

  const bool hot = hot_pos_.contains({column, value});
  stats.hot_hit = hot;
  // Result = index probe over the interesting partition (+ cold scan when
  // the value is not promoted; its hot-partition matches, promoted through
  // other columns, still come from the index).
  size_t matches_in_index = 0;
  std::vector<Rid> rids;
  indexes_[column]->Lookup(value, &rids);
  matches_in_index = rids.size();
  stats.query_cost += options_.index_probe_cost;
  stats.query_cost +=
      static_cast<double>(matches_in_index) * options_.page_cost;

  if (!hot) {
    stats.cold_pages_scanned = ColdPageCount();
    stats.query_cost +=
        static_cast<double>(stats.cold_pages_scanned) * options_.page_cost;
  } else {
    TouchLru(column, value);
  }

  // Promotion policy (identical window/threshold to the AIB tuner).
  const std::pair<ColumnId, Value> key{column, value};
  window_.push_back(key);
  ++window_counts_[key];
  if (window_.size() > options_.window_size) {
    const auto expired = window_.front();
    window_.pop_front();
    if (--window_counts_[expired] == 0) window_counts_.erase(expired);
  }
  if (!hot && window_counts_[key] >= options_.promote_threshold) {
    const size_t pages =
        MoveValue(column, value, /*to_hot=*/true, &stats.tuples_moved);
    const double cost = static_cast<double>(pages) * options_.page_cost;
    stats.move_cost += cost;
    total_move_cost_ += cost;
    hot_lru_.push_front(key);
    hot_pos_[key] = hot_lru_.begin();
    DemoteBeyondCapacity(&stats);
  }

  last_column_ = column;
  last_value_ = value;
  last_index_matches_ = matches_in_index;
  last_stats_ = stats;
  has_last_ = true;
  return stats;
}

std::string ShinobiBaseline::ExplainLast() const {
  if (!has_last_) return "";
  std::ostringstream out;
  out << "ShinobiQuery(col" << last_column_ << " = " << last_value_
      << ")  [cost=" << last_stats_.query_cost << "]\n";
  const bool has_scan = !last_stats_.hot_hit;
  const bool has_move = last_stats_.tuples_moved > 0;
  out << (has_scan || has_move ? "|- " : "`- ")
      << "HotPartitionProbe  [rows=" << last_index_matches_ << " probes=1]\n";
  if (has_scan) {
    out << (has_move ? "|- " : "`- ") << "ColdPartitionScan  [scanned="
        << last_stats_.cold_pages_scanned << "]\n";
  }
  if (has_move) {
    out << "`- PartitionMove  [tuples_moved=" << last_stats_.tuples_moved
        << " move_cost=" << last_stats_.move_cost << "]\n";
  }
  return out.str();
}

}  // namespace aib
