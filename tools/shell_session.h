#ifndef AIB_TOOLS_SHELL_SESSION_H_
#define AIB_TOOLS_SHELL_SESSION_H_

#include <chrono>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/query_control.h"
#include "shard/sharded_database.h"
#include "shard/tenant_scheduler.h"
#include "workload/catalog.h"

namespace aib::tools {

/// The command interpreter behind the `aib_shell` binary: a line-oriented
/// front end over the Catalog API, usable interactively, from script
/// files, and from tests.
///
/// Commands (one per line, `#` starts a comment):
///   config space_entries=N imax=N partition_pages=N tuples_per_page=N
///          pool_pages=N   — (re)creates the catalog; must come first
///                           (a pool smaller than the table keeps reads
///                           hitting the disk path, where faults inject)
///   create_table NAME INTCOLS
///   load_random NAME COUNT LO HI [SEED]
///   create_index NAME COLUMN LO HI [btree|hash|csb]
///   attach_tuner NAME COLUMN [WINDOW THRESHOLD CAPACITY]
///   query NAME COLUMN VALUE [COLUMN LO HI ...]
///   range NAME COLUMN LO HI [COLUMN LO HI ...]
///   explain NAME COLUMN LO HI [COLUMN LO HI ...]
///                         — executes and prints the physical plan tree
///                           with per-operator statistics; trailing
///                           COLUMN LO HI triplets add residual conjuncts
///   run NAME COLUMN COUNT LO HI [SEED]   — COUNT random point queries
///   insert NAME V1 [V2 ...]              — one tuple (payload auto); runs
///                           through the statement pipeline with full
///                           Table I maintenance, like all DML below
///   update NAME PAGE SLOT V1 [V2 ...]    — replace the tuple at rid
///                           (PAGE,SLOT); prints the new rid (it moves
///                           when the new image no longer fits the slot)
///   delete NAME PAGE SLOT                — delete the tuple at rid
///   fault arm SEED RATE [CORRUPT_FRACTION [LATENCY_RATE [LATENCY_TICKS]]]
///                         — arms the disk FaultInjector: RATE applies to
///                           both reads and writes; `config` and
///                           snapshot_load rebuild the catalog and disarm
///   fault off             — disarms the injector
///   deadline MS           — per-query deadline for query/range/run
///                           (0 clears)
///   buffers                              — Index Buffer Space summary
///   stats                                — metrics registry dump plus a
///                                          robustness summary line
///   consistency NAME                     — validate buffers against NAME
///   snapshot_save PATH
///   snapshot_load PATH
///   echo TEXT...
///
/// Sharded mode (src/shard/):
///   shards N [hash|range] [COLUMN]  — subsequent create_table builds an
///                           N-shard ShardedDatabase routed on COLUMN
///                           (default 0) instead of a catalog table;
///                           existing sharded tables are dropped
///   shards off            — back to single-node catalog mode
///   tenant T [COMMAND...] — with a trailing command, runs it as tenant T;
///                           alone, makes T the session tenant. Statements
///                           enter through each table's TenantScheduler
///   In sharded mode query/range/run/insert/load_random/create_index/
///   explain/fault/stats/buffers/consistency/attach_tuner/deadline work
///   against the shard fleet (explain renders the scatter legs; stats
///   prints per-shard lines plus the fleet rollup; fault arms every
///   shard's injector with SEED+shard; update/delete take a SHARD arg:
///   update NAME SHARD PAGE SLOT V1 [V2 ...]). Snapshots are
///   single-node-only.
class ShellSession {
 public:
  explicit ShellSession(std::ostream& out);

  /// Executes one command line. Errors are reported to the output stream;
  /// the return value is false only for unrecoverable input (used by tests
  /// to assert acceptance).
  bool ExecuteLine(const std::string& line);

  /// Reads and executes lines until EOF. Returns the number of failed
  /// commands.
  size_t Run(std::istream& in);

  Catalog* catalog() { return catalog_.get(); }

  bool sharded() const { return shard_count_ > 0; }
  ShardedDatabase* sharded_table(const std::string& name) {
    auto it = sharded_.find(name);
    return it == sharded_.end() ? nullptr : it->second.db.get();
  }

 private:
  /// One sharded table: the shard fleet plus its multi-tenant front door.
  struct ShardedTable {
    std::unique_ptr<ShardedDatabase> db;
    std::unique_ptr<TenantScheduler> scheduler;
  };

  bool Fail(const std::string& message);

  /// Control for one query: carries the session deadline when one is set.
  QueryControl MakeControl() const;

  /// Executes one query with the session deadline and the same whole-query
  /// retry policy as the QueryService (retries transients and corruption,
  /// never Timeout/Cancelled).
  Result<QueryResult> ExecuteQuery(Table* table, const Query& query);

  /// Dispatches a statement through `table`'s tenant scheduler as the
  /// session tenant, with the session deadline.
  Result<ShardResult> ExecuteSharded(ShardedTable* table,
                                     const ShardStatement& statement);

  ShardedTable* GetSharded(const std::string& name) {
    auto it = sharded_.find(name);
    return it == sharded_.end() ? nullptr : &it->second;
  }

  /// Handles the commands that behave differently against a shard fleet.
  /// Only called in sharded mode.
  bool ExecuteShardedLine(const std::vector<std::string>& tokens);

  std::ostream& out_;
  std::unique_ptr<Catalog> catalog_;
  /// Session deadline applied to each query/range/run query; zero = none.
  std::chrono::milliseconds deadline_{0};

  /// 0 = single-node catalog mode; > 0 = sharded mode with this many
  /// shards per created table.
  size_t shard_count_ = 0;
  ShardingPolicy shard_policy_ = ShardingPolicy::kHash;
  ColumnId routing_column_ = 0;
  uint64_t tenant_ = 0;
  std::map<std::string, ShardedTable> sharded_;
};

}  // namespace aib::tools

#endif  // AIB_TOOLS_SHELL_SESSION_H_
