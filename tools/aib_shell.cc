// aib_shell: a line-oriented front end over the library's Catalog API.
//
//   $ ./aib_shell                 # interactive (reads stdin)
//   $ ./aib_shell script.aib      # run a command script
//
// See tools/shell_session.h for the command reference, and
// tools/demo.aib for a worked example.

#include <fstream>
#include <iostream>

#include "tools/shell_session.h"

int main(int argc, char** argv) {
  aib::tools::ShellSession session(std::cout);
  if (argc > 1) {
    std::ifstream script(argv[1]);
    if (!script.is_open()) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 2;
    }
    return session.Run(script) == 0 ? 0 : 1;
  }
  std::cout << "aib_shell — Adaptive Index Buffer demo shell. Commands:\n"
               "  config / create_table / load_random / create_index /\n"
               "  attach_tuner / query / range / run / insert / buffers /\n"
               "  stats / consistency / snapshot_save / snapshot_load\n";
  return session.Run(std::cin) == 0 ? 0 : 1;
}
