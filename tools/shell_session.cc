#include "tools/shell_session.h"

#include <sstream>

#include "common/rng.h"
#include "core/consistency.h"
#include "storage/fault_injector.h"

namespace aib::tools {

namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) {
    if (token[0] == '#') break;
    tokens.push_back(token);
  }
  return tokens;
}

/// Parses "key=value" into the target if the key matches.
bool ParseKv(const std::string& token, const std::string& key,
             size_t* target) {
  const std::string prefix = key + "=";
  if (token.rfind(prefix, 0) != 0) return false;
  *target = std::stoull(token.substr(prefix.size()));
  return true;
}

IndexStructureKind ParseKind(const std::string& name) {
  if (name == "hash") return IndexStructureKind::kHash;
  if (name == "csb") return IndexStructureKind::kCsbTree;
  return IndexStructureKind::kBTree;
}

/// Appends residual conjuncts parsed from COLUMN LO HI triplets starting at
/// `tokens[from]`. Throws (caught by ExecuteLine) on malformed numbers.
bool ParseResiduals(const std::vector<std::string>& tokens, size_t from,
                    Query* query) {
  if ((tokens.size() - from) % 3 != 0) return false;
  for (size_t i = from; i + 2 < tokens.size(); i += 3) {
    query->And(static_cast<ColumnId>(std::stoi(tokens[i])),
               std::stoi(tokens[i + 1]), std::stoi(tokens[i + 2]));
  }
  return true;
}

}  // namespace

ShellSession::ShellSession(std::ostream& out) : out_(out) {
  catalog_ = std::make_unique<Catalog>(CatalogOptions{});
}

bool ShellSession::Fail(const std::string& message) {
  out_ << "error: " << message << "\n";
  return false;
}

QueryControl ShellSession::MakeControl() const {
  return deadline_.count() > 0 ? QueryControl::WithDeadline(deadline_)
                               : QueryControl{};
}

Result<ShardResult> ShellSession::ExecuteSharded(
    ShardedTable* table, const ShardStatement& statement) {
  ShardSubmitOptions submit;
  submit.deadline = deadline_;
  Result<std::future<Result<ShardResult>>> future =
      table->scheduler->Submit(tenant_, statement, submit);
  if (!future.ok()) return future.status();
  return std::move(future).value().get();
}

Result<QueryResult> ShellSession::ExecuteQuery(Table* table,
                                               const Query& query) {
  // Same whole-query retry policy as the QueryService: transients and
  // corruption get a fresh plan (quarantine/fallback inside the scan
  // operators heals the buffer between attempts); Timeout/Cancelled do not.
  Result<QueryResult> result =
      Result<QueryResult>(Status::Internal("query not attempted"));
  for (int attempt = 0; attempt < 4; ++attempt) {
    const QueryControl control = MakeControl();
    result = catalog_->Execute(table, query,
                               deadline_.count() > 0 ? &control : nullptr);
    if (result.ok() || (!result.status().IsTransient() &&
                        !result.status().IsCorruption())) {
      break;
    }
  }
  return result;
}

size_t ShellSession::Run(std::istream& in) {
  size_t failures = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!ExecuteLine(line)) ++failures;
  }
  return failures;
}

bool ShellSession::ExecuteLine(const std::string& line) {
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty()) return true;
  const std::string& command = tokens[0];

  try {
    if (command == "shards") {
      if (tokens.size() < 2) {
        return Fail("shards N [hash|range] [COLUMN] | shards off");
      }
      // Mode changes drop existing sharded tables either way.
      sharded_.clear();
      if (tokens[1] == "off") {
        shard_count_ = 0;
        out_ << "ok: sharded mode off\n";
        return true;
      }
      const size_t n = std::stoull(tokens[1]);
      if (n == 0) return Fail("shard count must be >= 1");
      shard_policy_ = ShardingPolicy::kHash;
      if (tokens.size() > 2) {
        if (tokens[2] == "range") {
          shard_policy_ = ShardingPolicy::kRange;
        } else if (tokens[2] != "hash") {
          return Fail("policy must be hash or range");
        }
      }
      routing_column_ =
          tokens.size() > 3 ? static_cast<ColumnId>(std::stoi(tokens[3])) : 0;
      shard_count_ = n;
      out_ << "ok: sharded mode, " << n << " shards, policy "
           << ShardingPolicyName(shard_policy_) << ", routing column "
           << routing_column_ << "\n";
      return true;
    }

    if (command == "tenant") {
      if (tokens.size() < 2) return Fail("tenant T [COMMAND ...]");
      const uint64_t tenant = std::stoull(tokens[1]);
      if (tokens.size() == 2) {
        tenant_ = tenant;
        out_ << "ok: tenant " << tenant_ << "\n";
        return true;
      }
      // Prefix form: run the rest of the line as this tenant, then
      // restore the session tenant.
      std::string rest;
      for (size_t i = 2; i < tokens.size(); ++i) {
        if (i > 2) rest += ' ';
        rest += tokens[i];
      }
      const uint64_t saved = tenant_;
      tenant_ = tenant;
      const bool ok = ExecuteLine(rest);
      tenant_ = saved;
      return ok;
    }

    if (sharded() && command != "config" && command != "deadline" &&
        command != "echo") {
      return ExecuteShardedLine(tokens);
    }

    if (command == "config") {
      CatalogOptions options;
      for (size_t i = 1; i < tokens.size(); ++i) {
        size_t value = 0;
        if (ParseKv(tokens[i], "space_entries", &value)) {
          options.space.max_entries = value;
        } else if (ParseKv(tokens[i], "imax", &value)) {
          options.space.max_pages_per_scan = value;
        } else if (ParseKv(tokens[i], "partition_pages", &value)) {
          options.buffer.partition_pages = value;
        } else if (ParseKv(tokens[i], "tuples_per_page", &value)) {
          options.max_tuples_per_page = static_cast<uint16_t>(value);
        } else if (ParseKv(tokens[i], "pool_pages", &value)) {
          options.buffer_pool_pages = value;
        } else {
          return Fail("unknown config key " + tokens[i]);
        }
      }
      catalog_ = std::make_unique<Catalog>(options);
      out_ << "ok: catalog configured\n";
      return true;
    }

    if (command == "create_table") {
      if (tokens.size() != 3) return Fail("create_table NAME INTCOLS");
      const int int_cols = std::stoi(tokens[2]);
      Result<Table*> table = catalog_->CreateTable(
          tokens[1], Schema::PaperSchema(int_cols, 64));
      if (!table.ok()) return Fail(table.status().ToString());
      out_ << "ok: table " << tokens[1] << " with " << int_cols
           << " int columns\n";
      return true;
    }

    if (command == "load_random") {
      if (tokens.size() < 5) return Fail("load_random NAME COUNT LO HI [SEED]");
      Table* table = catalog_->GetTable(tokens[1]);
      if (table == nullptr) return Fail("no table " + tokens[1]);
      const size_t count = std::stoull(tokens[2]);
      const Value lo = std::stoi(tokens[3]);
      const Value hi = std::stoi(tokens[4]);
      Rng rng(tokens.size() > 5 ? std::stoull(tokens[5]) : 1);
      const size_t int_cols = table->schema().IntColumnIds().size();
      for (size_t i = 0; i < count; ++i) {
        std::vector<Value> values;
        for (size_t c = 0; c < int_cols; ++c) {
          values.push_back(static_cast<Value>(rng.UniformInt(lo, hi)));
        }
        Result<Rid> rid =
            catalog_->LoadTuple(table, Tuple(std::move(values), {"row"}));
        if (!rid.ok()) return Fail(rid.status().ToString());
      }
      out_ << "ok: loaded " << count << " tuples into " << tokens[1] << " ("
           << table->PageCount() << " pages)\n";
      return true;
    }

    if (command == "create_index") {
      if (tokens.size() < 5) {
        return Fail("create_index NAME COLUMN LO HI [btree|hash|csb]");
      }
      Table* table = catalog_->GetTable(tokens[1]);
      if (table == nullptr) return Fail("no table " + tokens[1]);
      const ColumnId column = static_cast<ColumnId>(std::stoi(tokens[2]));
      const Status status = catalog_->CreatePartialIndex(
          table, column,
          ValueCoverage::Range(std::stoi(tokens[3]), std::stoi(tokens[4])),
          ParseKind(tokens.size() > 5 ? tokens[5] : "btree"));
      if (!status.ok()) return Fail(status.ToString());
      out_ << "ok: partial index on " << tokens[1] << "." << column
           << " covering [" << tokens[3] << "," << tokens[4] << "]\n";
      return true;
    }

    if (command == "attach_tuner") {
      if (tokens.size() < 3) {
        return Fail("attach_tuner NAME COLUMN [WINDOW THRESHOLD CAPACITY]");
      }
      Table* table = catalog_->GetTable(tokens[1]);
      if (table == nullptr) return Fail("no table " + tokens[1]);
      IndexTunerOptions options;
      if (tokens.size() > 3) options.window_size = std::stoull(tokens[3]);
      if (tokens.size() > 4) options.index_threshold = std::stoi(tokens[4]);
      if (tokens.size() > 5) {
        options.max_indexed_values = std::stoull(tokens[5]);
      }
      const Status status = catalog_->AttachTuner(
          table, static_cast<ColumnId>(std::stoi(tokens[2])), options);
      if (!status.ok()) return Fail(status.ToString());
      out_ << "ok: tuner attached\n";
      return true;
    }

    if (command == "query" || command == "range") {
      const bool is_range = command == "range";
      const size_t base = is_range ? 5u : 4u;
      if (tokens.size() < base) {
        return Fail(is_range ? "range NAME COLUMN LO HI [COLUMN LO HI ...]"
                             : "query NAME COLUMN VALUE [COLUMN LO HI ...]");
      }
      Table* table = catalog_->GetTable(tokens[1]);
      if (table == nullptr) return Fail("no table " + tokens[1]);
      const ColumnId column = static_cast<ColumnId>(std::stoi(tokens[2]));
      const Value lo = std::stoi(tokens[3]);
      const Value hi = is_range ? std::stoi(tokens[4]) : lo;
      Query query = Query::Range(column, lo, hi);
      if (!ParseResiduals(tokens, base, &query)) {
        return Fail("residual predicates must be COLUMN LO HI triplets");
      }
      Result<QueryResult> result = ExecuteQuery(table, query);
      if (!result.ok()) return Fail(result.status().ToString());
      out_ << "rows=" << result->rids.size()
           << " cost=" << result->stats.cost
           << " scanned=" << result->stats.pages_scanned
           << " skipped=" << result->stats.pages_skipped
           << (result->stats.used_partial_index ? " [index]"
               : result->stats.used_index_buffer ? " [buffer]"
                                                 : " [scan]")
           << "\n";
      return true;
    }

    if (command == "explain") {
      if (tokens.size() < 5) {
        return Fail("explain NAME COLUMN LO HI [COLUMN LO HI ...]");
      }
      Table* table = catalog_->GetTable(tokens[1]);
      if (table == nullptr) return Fail("no table " + tokens[1]);
      Query query = Query::Range(static_cast<ColumnId>(std::stoi(tokens[2])),
                                 std::stoi(tokens[3]), std::stoi(tokens[4]));
      if (!ParseResiduals(tokens, 5, &query)) {
        return Fail("residual predicates must be COLUMN LO HI triplets");
      }
      Executor* executor = catalog_->executor(table);
      std::unique_ptr<PhysicalPlan> plan = executor->PlanQuery(query);
      Result<QueryResult> result = executor->ExecutePlan(plan.get());
      if (!result.ok()) return Fail(result.status().ToString());
      out_ << ExplainPlan(*plan);
      out_ << "rows=" << result->rids.size()
           << " cost=" << result->stats.cost << "\n";
      return true;
    }

    if (command == "run") {
      if (tokens.size() < 6) return Fail("run NAME COLUMN COUNT LO HI [SEED]");
      Table* table = catalog_->GetTable(tokens[1]);
      if (table == nullptr) return Fail("no table " + tokens[1]);
      const ColumnId column = static_cast<ColumnId>(std::stoi(tokens[2]));
      const size_t count = std::stoull(tokens[3]);
      const Value lo = std::stoi(tokens[4]);
      const Value hi = std::stoi(tokens[5]);
      Rng rng(tokens.size() > 6 ? std::stoull(tokens[6]) : 7);
      double total_cost = 0;
      for (size_t i = 0; i < count; ++i) {
        // Each query (and each retry attempt) gets a fresh budget; a session
        // deadline bounds the individual queries, not the whole batch.
        Result<QueryResult> result = ExecuteQuery(
            table, Query::Point(column,
                                static_cast<Value>(rng.UniformInt(lo, hi))));
        if (!result.ok()) return Fail(result.status().ToString());
        total_cost += result->stats.cost;
      }
      out_ << "ok: " << count << " queries, mean cost "
           << total_cost / static_cast<double>(count) << "\n";
      return true;
    }

    if (command == "insert") {
      if (tokens.size() < 3) return Fail("insert NAME V1 [V2 ...]");
      Table* table = catalog_->GetTable(tokens[1]);
      if (table == nullptr) return Fail("no table " + tokens[1]);
      std::vector<Value> values;
      for (size_t i = 2; i < tokens.size(); ++i) {
        values.push_back(std::stoi(tokens[i]));
      }
      if (values.size() != table->schema().IntColumnIds().size()) {
        return Fail("value count does not match schema");
      }
      Result<Rid> rid =
          catalog_->Insert(table, Tuple(std::move(values), {"row"}));
      if (!rid.ok()) return Fail(rid.status().ToString());
      out_ << "ok: inserted at " << RidToString(rid.value()) << "\n";
      return true;
    }

    if (command == "update") {
      if (tokens.size() < 5) return Fail("update NAME PAGE SLOT V1 [V2 ...]");
      Table* table = catalog_->GetTable(tokens[1]);
      if (table == nullptr) return Fail("no table " + tokens[1]);
      const Rid rid{static_cast<PageId>(std::stoull(tokens[2])),
                    static_cast<SlotId>(std::stoul(tokens[3]))};
      std::vector<Value> values;
      for (size_t i = 4; i < tokens.size(); ++i) {
        values.push_back(std::stoi(tokens[i]));
      }
      if (values.size() != table->schema().IntColumnIds().size()) {
        return Fail("value count does not match schema");
      }
      Result<Rid> new_rid =
          catalog_->Update(table, rid, Tuple(std::move(values), {"row"}));
      if (!new_rid.ok()) return Fail(new_rid.status().ToString());
      out_ << "ok: updated " << RidToString(rid) << " -> "
           << RidToString(new_rid.value()) << "\n";
      return true;
    }

    if (command == "delete") {
      if (tokens.size() != 4) return Fail("delete NAME PAGE SLOT");
      Table* table = catalog_->GetTable(tokens[1]);
      if (table == nullptr) return Fail("no table " + tokens[1]);
      const Rid rid{static_cast<PageId>(std::stoull(tokens[2])),
                    static_cast<SlotId>(std::stoul(tokens[3]))};
      const Status status = catalog_->Delete(table, rid);
      if (!status.ok()) return Fail(status.ToString());
      out_ << "ok: deleted " << RidToString(rid) << "\n";
      return true;
    }

    if (command == "buffers") {
      if (catalog_->space() == nullptr) {
        out_ << "index buffer space disabled\n";
        return true;
      }
      out_ << "space: " << catalog_->space()->TotalEntries() << " entries";
      if (!catalog_->space()->Unlimited()) {
        out_ << " / " << catalog_->space()->options().max_entries;
      }
      out_ << "\n";
      for (const auto& [index, buffer] : catalog_->space()->buffers()) {
        out_ << "  " << index->table().name() << ".col" << index->column()
             << ": " << buffer->TotalEntries() << " entries, "
             << buffer->PartitionCount() << " partitions, T="
             << buffer->MeanInterval() << "\n";
      }
      return true;
    }

    if (command == "fault") {
      if (tokens.size() < 2) {
        return Fail(
            "fault arm SEED RATE [CORRUPT_FRACTION [LATENCY_RATE "
            "[LATENCY_TICKS]]] | fault off");
      }
      FaultInjector& injector = catalog_->disk().fault_injector();
      if (tokens[1] == "off") {
        injector.Disarm();
        out_ << "ok: faults disarmed\n";
        return true;
      }
      if (tokens[1] != "arm" || tokens.size() < 4) {
        return Fail(
            "fault arm SEED RATE [CORRUPT_FRACTION [LATENCY_RATE "
            "[LATENCY_TICKS]]] | fault off");
      }
      FaultInjectorOptions options;
      options.seed = std::stoull(tokens[2]);
      options.read_fault_rate = std::stod(tokens[3]);
      options.write_fault_rate = options.read_fault_rate;
      if (tokens.size() > 4) options.corruption_fraction = std::stod(tokens[4]);
      if (tokens.size() > 5) options.latency_rate = std::stod(tokens[5]);
      if (tokens.size() > 6) options.latency_ticks = std::stoull(tokens[6]);
      injector.Arm(options);
      out_ << "ok: faults armed seed=" << options.seed
           << " rate=" << options.read_fault_rate << "\n";
      return true;
    }

    if (command == "deadline") {
      if (tokens.size() != 2) return Fail("deadline MS (0 clears)");
      deadline_ = std::chrono::milliseconds(std::stoll(tokens[1]));
      if (deadline_.count() < 0) {
        deadline_ = std::chrono::milliseconds(0);
        return Fail("deadline must be >= 0");
      }
      if (deadline_.count() == 0) {
        out_ << "ok: deadline cleared\n";
      } else {
        out_ << "ok: deadline " << deadline_.count() << " ms\n";
      }
      return true;
    }

    if (command == "stats") {
      out_ << catalog_->metrics().ToString();
      const Metrics& metrics = catalog_->metrics();
      out_ << "robustness: faults_armed="
           << (catalog_->disk().fault_injector().armed() ? "yes" : "no")
           << " faults_injected=" << metrics.Get(kMetricFaultsInjected)
           << " transient_retries=" << metrics.Get(kMetricTransientRetries)
           << " quarantined=" << metrics.Get(kMetricPartitionsQuarantined)
           << " degraded=" << metrics.Get(kMetricDegradedQueries)
           << " timed_out=" << metrics.Get(kMetricQueriesTimedOut)
           << " cancelled=" << metrics.Get(kMetricQueriesCancelled) << "\n";
      const int64_t hits = metrics.Get(kMetricBufferHits);
      const int64_t misses = metrics.Get(kMetricBufferMisses);
      const int64_t pages_read = metrics.Get(kMetricPagesRead);
      const int64_t pages_served = metrics.Get(kMetricScanPagesServed);
      out_ << "buffer: hit_rate="
           << (hits + misses == 0
                   ? 0.0
                   : static_cast<double>(hits) /
                         static_cast<double>(hits + misses))
           << " prefetch_issued=" << metrics.Get(kMetricIoSchedRequests)
           << " prefetch_staged=" << metrics.Get(kMetricIoSchedStaged)
           << " prefetch_dropped=" << metrics.Get(kMetricPrefetchDropped)
           << " page_reuse="
           << (pages_read == 0 ? 0.0
                               : static_cast<double>(pages_served) /
                                     static_cast<double>(pages_read))
           << " io_queue_p95="
           << metrics.HistogramCopy(kMetricIoQueueDepth).Percentile(0.95)
           << "\n";
      out_ << "latching: shared=" << metrics.Get(kMetricLatchSharedAcquires)
           << " exclusive=" << metrics.Get(kMetricLatchExclusiveAcquires)
           << " waits=" << metrics.Get(kMetricLatchWaits)
           << " optimistic_retries="
           << metrics.Get(kMetricLatchOptimisticRetries)
           << " optimistic_fallbacks="
           << metrics.Get(kMetricLatchOptimisticFallbacks) << " wait_us={"
           << metrics.HistogramCopy(kMetricLatchWaitMicros).Summary() << "}\n";
      return true;
    }

    if (command == "consistency") {
      if (tokens.size() != 2) return Fail("consistency NAME");
      Table* table = catalog_->GetTable(tokens[1]);
      if (table == nullptr) return Fail("no table " + tokens[1]);
      if (catalog_->space() == nullptr) {
        out_ << "ok: no space to check\n";
        return true;
      }
      // The check audits engine state; mask fault injection so it does not
      // roll the dice on its own page reads (mirrors the engine's internal
      // post-quarantine re-check).
      FaultInjector::ScopedSuspend suspend;
      const Status status = CheckSpaceConsistency(*table, *catalog_->space());
      if (!status.ok()) return Fail(status.ToString());
      out_ << "ok: consistent\n";
      return true;
    }

    if (command == "snapshot_save") {
      if (tokens.size() != 2) return Fail("snapshot_save PATH");
      const Status status = catalog_->SaveSnapshot(tokens[1]);
      if (!status.ok()) return Fail(status.ToString());
      out_ << "ok: snapshot saved to " << tokens[1] << "\n";
      return true;
    }

    if (command == "snapshot_load") {
      if (tokens.size() != 2) return Fail("snapshot_load PATH");
      Result<std::unique_ptr<Catalog>> loaded =
          Catalog::LoadSnapshot(tokens[1], catalog_->options());
      if (!loaded.ok()) return Fail(loaded.status().ToString());
      catalog_ = std::move(loaded).value();
      out_ << "ok: snapshot loaded from " << tokens[1] << "\n";
      return true;
    }

    if (command == "echo") {
      for (size_t i = 1; i < tokens.size(); ++i) {
        out_ << (i > 1 ? " " : "") << tokens[i];
      }
      out_ << "\n";
      return true;
    }
  } catch (const std::exception& e) {
    return Fail(std::string("bad argument: ") + e.what());
  }

  return Fail("unknown command " + command);
}

bool ShellSession::ExecuteShardedLine(const std::vector<std::string>& tokens) {
  const std::string& command = tokens[0];

  if (command == "create_table") {
    if (tokens.size() != 3) return Fail("create_table NAME INTCOLS");
    if (sharded_.count(tokens[1]) != 0) {
      return Fail("table " + tokens[1] + " already exists");
    }
    const int int_cols = std::stoi(tokens[2]);
    if (routing_column_ >= static_cast<ColumnId>(int_cols)) {
      return Fail("routing column out of range for " + tokens[2] +
                  " int columns");
    }
    const CatalogOptions& base = catalog_->options();
    ShardedDatabaseOptions options;
    options.router.num_shards = shard_count_;
    options.router.policy = shard_policy_;
    options.router.routing_column = routing_column_;
    options.shard.db.page_size = base.page_size;
    options.shard.db.buffer_pool_pages = base.buffer_pool_pages;
    options.shard.db.max_tuples_per_page = base.max_tuples_per_page;
    options.shard.db.space = base.space;
    options.shard.db.buffer = base.buffer;
    options.shard.db.enable_index_buffer = base.enable_index_buffer;
    options.shard.db.cost = base.cost;
    // One worker per shard service keeps the shell deterministic (FIFO
    // per shard), like the catalog path.
    options.shard.service.num_workers = 1;
    ShardedTable entry;
    entry.db = std::make_unique<ShardedDatabase>(
        Schema::PaperSchema(int_cols, 64), options);
    TenantSchedulerOptions scheduler;
    scheduler.num_workers = 1;
    scheduler.metrics = &entry.db->router_metrics();
    entry.scheduler =
        std::make_unique<TenantScheduler>(entry.db.get(), scheduler);
    sharded_.emplace(tokens[1], std::move(entry));
    out_ << "ok: sharded table " << tokens[1] << " with " << int_cols
         << " int columns on " << shard_count_ << " shards\n";
    return true;
  }

  ShardedTable* table = tokens.size() > 1 ? GetSharded(tokens[1]) : nullptr;

  if (command == "load_random") {
    if (tokens.size() < 5) return Fail("load_random NAME COUNT LO HI [SEED]");
    if (table == nullptr) return Fail("no sharded table " + tokens[1]);
    const size_t count = std::stoull(tokens[2]);
    const Value lo = std::stoi(tokens[3]);
    const Value hi = std::stoi(tokens[4]);
    Rng rng(tokens.size() > 5 ? std::stoull(tokens[5]) : 1);
    const size_t int_cols = table->db->schema().IntColumnIds().size();
    for (size_t i = 0; i < count; ++i) {
      std::vector<Value> values;
      for (size_t c = 0; c < int_cols; ++c) {
        values.push_back(static_cast<Value>(rng.UniformInt(lo, hi)));
      }
      Result<GlobalRid> rid =
          table->db->LoadTuple(Tuple(std::move(values), {"row"}));
      if (!rid.ok()) return Fail(rid.status().ToString());
    }
    size_t pages = 0;
    for (size_t s = 0; s < table->db->ShardCount(); ++s) {
      pages += table->db->shard(s).db().table().PageCount();
    }
    out_ << "ok: loaded " << count << " tuples into " << tokens[1] << " ("
         << pages << " pages across " << table->db->ShardCount()
         << " shards)\n";
    return true;
  }

  if (command == "create_index") {
    if (tokens.size() < 5) {
      return Fail("create_index NAME COLUMN LO HI [btree|hash|csb]");
    }
    if (table == nullptr) return Fail("no sharded table " + tokens[1]);
    const ColumnId column = static_cast<ColumnId>(std::stoi(tokens[2]));
    const Status status = table->db->CreatePartialIndex(
        column,
        ValueCoverage::Range(std::stoi(tokens[3]), std::stoi(tokens[4])),
        ParseKind(tokens.size() > 5 ? tokens[5] : "btree"));
    if (!status.ok()) return Fail(status.ToString());
    out_ << "ok: partial index on " << tokens[1] << "." << column
         << " covering [" << tokens[3] << "," << tokens[4] << "] on every shard\n";
    return true;
  }

  if (command == "attach_tuner") {
    if (tokens.size() < 3) {
      return Fail("attach_tuner NAME COLUMN [WINDOW THRESHOLD CAPACITY]");
    }
    if (table == nullptr) return Fail("no sharded table " + tokens[1]);
    IndexTunerOptions options;
    if (tokens.size() > 3) options.window_size = std::stoull(tokens[3]);
    if (tokens.size() > 4) options.index_threshold = std::stoi(tokens[4]);
    if (tokens.size() > 5) options.max_indexed_values = std::stoull(tokens[5]);
    const ColumnId column = static_cast<ColumnId>(std::stoi(tokens[2]));
    for (size_t s = 0; s < table->db->ShardCount(); ++s) {
      const Status status = table->db->shard(s).db().AttachTuner(column, options);
      if (!status.ok()) return Fail(status.ToString());
    }
    out_ << "ok: tuner attached on every shard\n";
    return true;
  }

  if (command == "query" || command == "range") {
    const bool is_range = command == "range";
    const size_t base = is_range ? 5u : 4u;
    if (tokens.size() < base) {
      return Fail(is_range ? "range NAME COLUMN LO HI [COLUMN LO HI ...]"
                           : "query NAME COLUMN VALUE [COLUMN LO HI ...]");
    }
    if (table == nullptr) return Fail("no sharded table " + tokens[1]);
    const ColumnId column = static_cast<ColumnId>(std::stoi(tokens[2]));
    const Value lo = std::stoi(tokens[3]);
    const Value hi = is_range ? std::stoi(tokens[4]) : lo;
    Query query = Query::Range(column, lo, hi);
    if (!ParseResiduals(tokens, base, &query)) {
      return Fail("residual predicates must be COLUMN LO HI triplets");
    }
    Result<ShardResult> result =
        ExecuteSharded(table, ShardStatement::Select(query));
    if (!result.ok()) return Fail(result.status().ToString());
    out_ << "rows=" << result->rids.size() << " cost=" << result->stats.cost
         << " scanned=" << result->stats.pages_scanned
         << " skipped=" << result->stats.pages_skipped << " legs="
         << result->legs << "/" << table->db->ShardCount()
         << (result->stats.used_partial_index   ? " [index]"
             : result->stats.used_index_buffer ? " [buffer]"
                                               : " [scan]")
         << "\n";
    return true;
  }

  if (command == "explain") {
    if (tokens.size() < 5) {
      return Fail("explain NAME COLUMN LO HI [COLUMN LO HI ...]");
    }
    if (table == nullptr) return Fail("no sharded table " + tokens[1]);
    Query query = Query::Range(static_cast<ColumnId>(std::stoi(tokens[2])),
                               std::stoi(tokens[3]), std::stoi(tokens[4]));
    if (!ParseResiduals(tokens, 5, &query)) {
      return Fail("residual predicates must be COLUMN LO HI triplets");
    }
    Result<std::string> rendered = table->db->Explain(query);
    if (!rendered.ok()) return Fail(rendered.status().ToString());
    out_ << rendered.value();
    return true;
  }

  if (command == "run") {
    if (tokens.size() < 6) return Fail("run NAME COLUMN COUNT LO HI [SEED]");
    if (table == nullptr) return Fail("no sharded table " + tokens[1]);
    const ColumnId column = static_cast<ColumnId>(std::stoi(tokens[2]));
    const size_t count = std::stoull(tokens[3]);
    const Value lo = std::stoi(tokens[4]);
    const Value hi = std::stoi(tokens[5]);
    Rng rng(tokens.size() > 6 ? std::stoull(tokens[6]) : 7);
    double total_cost = 0;
    for (size_t i = 0; i < count; ++i) {
      Result<ShardResult> result = ExecuteSharded(
          table, ShardStatement::Select(Query::Point(
                     column, static_cast<Value>(rng.UniformInt(lo, hi)))));
      if (!result.ok()) return Fail(result.status().ToString());
      total_cost += result->stats.cost;
    }
    out_ << "ok: " << count << " queries, mean cost "
         << total_cost / static_cast<double>(count) << "\n";
    return true;
  }

  if (command == "insert") {
    if (tokens.size() < 3) return Fail("insert NAME V1 [V2 ...]");
    if (table == nullptr) return Fail("no sharded table " + tokens[1]);
    std::vector<Value> values;
    for (size_t i = 2; i < tokens.size(); ++i) {
      values.push_back(std::stoi(tokens[i]));
    }
    if (values.size() != table->db->schema().IntColumnIds().size()) {
      return Fail("value count does not match schema");
    }
    Result<ShardResult> result = ExecuteSharded(
        table, ShardStatement::Insert(Tuple(std::move(values), {"row"})));
    if (!result.ok()) return Fail(result.status().ToString());
    out_ << "ok: inserted at " << GlobalRidToString(result->rids.at(0))
         << "\n";
    return true;
  }

  if (command == "update") {
    if (tokens.size() < 6) {
      return Fail("update NAME SHARD PAGE SLOT V1 [V2 ...]");
    }
    if (table == nullptr) return Fail("no sharded table " + tokens[1]);
    const GlobalRid target{
        static_cast<uint32_t>(std::stoul(tokens[2])),
        Rid{static_cast<PageId>(std::stoull(tokens[3])),
            static_cast<SlotId>(std::stoul(tokens[4]))}};
    std::vector<Value> values;
    for (size_t i = 5; i < tokens.size(); ++i) {
      values.push_back(std::stoi(tokens[i]));
    }
    if (values.size() != table->db->schema().IntColumnIds().size()) {
      return Fail("value count does not match schema");
    }
    Result<ShardResult> result = ExecuteSharded(
        table,
        ShardStatement::Update(target, Tuple(std::move(values), {"row"})));
    if (!result.ok()) return Fail(result.status().ToString());
    out_ << "ok: updated " << GlobalRidToString(target) << " -> "
         << GlobalRidToString(result->rids.at(0))
         << (result->legs > 1 ? " (migrated)" : "") << "\n";
    return true;
  }

  if (command == "delete") {
    if (tokens.size() != 5) return Fail("delete NAME SHARD PAGE SLOT");
    if (table == nullptr) return Fail("no sharded table " + tokens[1]);
    const GlobalRid target{
        static_cast<uint32_t>(std::stoul(tokens[2])),
        Rid{static_cast<PageId>(std::stoull(tokens[3])),
            static_cast<SlotId>(std::stoul(tokens[4]))}};
    Result<ShardResult> result =
        ExecuteSharded(table, ShardStatement::Delete(target));
    if (!result.ok()) return Fail(result.status().ToString());
    out_ << "ok: deleted " << GlobalRidToString(target) << "\n";
    return true;
  }

  if (command == "fault") {
    if (tokens.size() < 2 ||
        (tokens[1] == "arm" && tokens.size() < 4) ||
        (tokens[1] != "arm" && tokens[1] != "off")) {
      return Fail(
          "fault arm SEED RATE [CORRUPT_FRACTION [LATENCY_RATE "
          "[LATENCY_TICKS]]] | fault off");
    }
    for (auto& [name, entry] : sharded_) {
      for (size_t s = 0; s < entry.db->ShardCount(); ++s) {
        FaultInjector& injector =
            entry.db->shard(s).db().catalog().disk().fault_injector();
        if (tokens[1] == "off") {
          injector.Disarm();
          continue;
        }
        FaultInjectorOptions options;
        // Distinct per-shard seeds: same command, decorrelated fault
        // streams across the fleet.
        options.seed = std::stoull(tokens[2]) + s;
        options.read_fault_rate = std::stod(tokens[3]);
        options.write_fault_rate = options.read_fault_rate;
        if (tokens.size() > 4) {
          options.corruption_fraction = std::stod(tokens[4]);
        }
        if (tokens.size() > 5) options.latency_rate = std::stod(tokens[5]);
        if (tokens.size() > 6) options.latency_ticks = std::stoull(tokens[6]);
        injector.Arm(options);
      }
    }
    if (tokens[1] == "off") {
      out_ << "ok: faults disarmed on every shard\n";
    } else {
      out_ << "ok: faults armed on every shard, base seed " << tokens[2]
           << " rate=" << tokens[3] << "\n";
    }
    return true;
  }

  if (command == "shardfault") {
    // Whole-shard outages, the fleet-level sibling of `fault`:
    //   shardfault NAME SHARD crash|hang|revive
    //   shardfault NAME SHARD brownout ERR_RATE LAT_RATE [LAT_US]
    if (tokens.size() < 4) {
      return Fail(
          "shardfault NAME SHARD crash|hang|revive | shardfault NAME SHARD "
          "brownout ERR_RATE LAT_RATE [LAT_US]");
    }
    if (table == nullptr) return Fail("no sharded table " + tokens[1]);
    const size_t shard = std::stoull(tokens[2]);
    if (shard >= table->db->ShardCount()) {
      return Fail("shard " + tokens[2] + " out of range");
    }
    ShardFaultInjector& injector = table->db->fault_injector();
    const std::string& outage = tokens[3];
    if (outage == "crash") {
      injector.Crash(shard);
    } else if (outage == "hang") {
      injector.Hang(shard);
    } else if (outage == "revive") {
      injector.Revive(shard);
    } else if (outage == "brownout") {
      if (tokens.size() < 6) {
        return Fail("shardfault NAME SHARD brownout ERR_RATE LAT_RATE [LAT_US]");
      }
      BrownoutOptions options;
      options.error_rate = std::stod(tokens[4]);
      options.latency_rate = std::stod(tokens[5]);
      if (tokens.size() > 6) {
        options.latency = std::chrono::microseconds(std::stoull(tokens[6]));
      }
      injector.Brownout(shard, options);
    } else {
      return Fail("outage must be crash, hang, brownout, or revive");
    }
    out_ << "ok: shard " << shard << " "
         << ShardOutageName(injector.outage(shard)) << "\n";
    return true;
  }

  if (command == "restart") {
    if (tokens.size() != 3) return Fail("restart NAME SHARD");
    if (table == nullptr) return Fail("no sharded table " + tokens[1]);
    const size_t shard = std::stoull(tokens[2]);
    if (shard >= table->db->ShardCount()) {
      return Fail("shard " + tokens[2] + " out of range");
    }
    const Status status = table->db->RestartShard(shard);
    if (!status.ok()) return Fail(status.ToString());
    out_ << "ok: shard " << shard
         << " restarted (cold buffers, breaker reset)\n";
    return true;
  }

  if (command == "buffers") {
    for (const auto& [name, entry] : sharded_) {
      out_ << name << ":\n";
      for (size_t s = 0; s < entry.db->ShardCount(); ++s) {
        const IndexBufferSpace* space =
            const_cast<ShardedTable&>(entry).db->shard(s).db().space();
        out_ << "  shard " << s << ": ";
        if (space == nullptr) {
          out_ << "index buffer space disabled\n";
          continue;
        }
        out_ << space->TotalEntries() << " entries";
        if (!space->Unlimited()) out_ << " / " << space->options().max_entries;
        out_ << "\n";
      }
    }
    return true;
  }

  if (command == "stats") {
    for (const auto& [name, entry] : sharded_) {
      ShardedDatabase& db = *const_cast<ShardedTable&>(entry).db;
      out_ << name << " (" << db.ShardCount() << " shards):\n";
      for (size_t s = 0; s < db.ShardCount(); ++s) {
        const Metrics& metrics = db.shard(s).metrics();
        out_ << "  shard " << s << ": pages_read="
             << metrics.Get(kMetricPagesRead)
             << " executed=" << metrics.Get(kMetricServiceExecuted)
             << " dml=" << metrics.Get(kMetricServiceDmlExecuted)
             << " faults=" << metrics.Get(kMetricFaultsInjected)
             << " retries=" << metrics.Get(kMetricTransientRetries)
             << " latch_waits=" << metrics.Get(kMetricLatchWaits)
             << " optimistic_retries="
             << metrics.Get(kMetricLatchOptimisticRetries) << "\n";
      }
      for (size_t s = 0; s < db.ShardCount(); ++s) {
        const ShardHealthSnapshot health = db.health().snapshot(s);
        out_ << "  shard " << s << " health: outage="
             << ShardOutageName(db.fault_injector().outage(s))
             << " breaker=" << BreakerStateName(health.state)
             << " samples=" << health.samples
             << " failures=" << health.failures
             << " opened=" << health.times_opened << "\n";
      }
      for (const TenantScheduler::TenantInfo& info :
           entry.scheduler->TenantInfos()) {
        out_ << "  tenant " << info.tenant << ": weight=" << info.weight
             << " submitted=" << info.submitted
             << " dispatched=" << info.dispatched
             << " rejected=" << info.rejected << " queued=" << info.queued
             << "\n";
      }
      out_ << "  fleet:\n";
      for (const auto& [counter, value] : db.FleetCounters()) {
        out_ << "    " << counter << "=" << value << "\n";
      }
    }
    return true;
  }

  if (command == "consistency") {
    if (tokens.size() != 2) return Fail("consistency NAME");
    if (table == nullptr) return Fail("no sharded table " + tokens[1]);
    FaultInjector::ScopedSuspend suspend;
    for (size_t s = 0; s < table->db->ShardCount(); ++s) {
      Database& db = table->db->shard(s).db();
      if (db.space() == nullptr) continue;
      const Status status = CheckSpaceConsistency(db.table(), *db.space());
      if (!status.ok()) {
        return Fail("shard " + std::to_string(s) + ": " + status.ToString());
      }
    }
    out_ << "ok: every shard consistent\n";
    return true;
  }

  if (command == "snapshot_save" || command == "snapshot_load") {
    return Fail("snapshots are single-node-only; run `shards off` first");
  }

  return Fail("unknown command " + command);
}

}  // namespace aib::tools
