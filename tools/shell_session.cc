#include "tools/shell_session.h"

#include <sstream>

#include "common/rng.h"
#include "core/consistency.h"
#include "storage/fault_injector.h"

namespace aib::tools {

namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) {
    if (token[0] == '#') break;
    tokens.push_back(token);
  }
  return tokens;
}

/// Parses "key=value" into the target if the key matches.
bool ParseKv(const std::string& token, const std::string& key,
             size_t* target) {
  const std::string prefix = key + "=";
  if (token.rfind(prefix, 0) != 0) return false;
  *target = std::stoull(token.substr(prefix.size()));
  return true;
}

IndexStructureKind ParseKind(const std::string& name) {
  if (name == "hash") return IndexStructureKind::kHash;
  if (name == "csb") return IndexStructureKind::kCsbTree;
  return IndexStructureKind::kBTree;
}

/// Appends residual conjuncts parsed from COLUMN LO HI triplets starting at
/// `tokens[from]`. Throws (caught by ExecuteLine) on malformed numbers.
bool ParseResiduals(const std::vector<std::string>& tokens, size_t from,
                    Query* query) {
  if ((tokens.size() - from) % 3 != 0) return false;
  for (size_t i = from; i + 2 < tokens.size(); i += 3) {
    query->And(static_cast<ColumnId>(std::stoi(tokens[i])),
               std::stoi(tokens[i + 1]), std::stoi(tokens[i + 2]));
  }
  return true;
}

}  // namespace

ShellSession::ShellSession(std::ostream& out) : out_(out) {
  catalog_ = std::make_unique<Catalog>(CatalogOptions{});
}

bool ShellSession::Fail(const std::string& message) {
  out_ << "error: " << message << "\n";
  return false;
}

QueryControl ShellSession::MakeControl() const {
  return deadline_.count() > 0 ? QueryControl::WithDeadline(deadline_)
                               : QueryControl{};
}

Result<QueryResult> ShellSession::ExecuteQuery(Table* table,
                                               const Query& query) {
  // Same whole-query retry policy as the QueryService: transients and
  // corruption get a fresh plan (quarantine/fallback inside the scan
  // operators heals the buffer between attempts); Timeout/Cancelled do not.
  Result<QueryResult> result =
      Result<QueryResult>(Status::Internal("query not attempted"));
  for (int attempt = 0; attempt < 4; ++attempt) {
    const QueryControl control = MakeControl();
    result = catalog_->Execute(table, query,
                               deadline_.count() > 0 ? &control : nullptr);
    if (result.ok() || (!result.status().IsTransient() &&
                        !result.status().IsCorruption())) {
      break;
    }
  }
  return result;
}

size_t ShellSession::Run(std::istream& in) {
  size_t failures = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!ExecuteLine(line)) ++failures;
  }
  return failures;
}

bool ShellSession::ExecuteLine(const std::string& line) {
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty()) return true;
  const std::string& command = tokens[0];

  try {
    if (command == "config") {
      CatalogOptions options;
      for (size_t i = 1; i < tokens.size(); ++i) {
        size_t value = 0;
        if (ParseKv(tokens[i], "space_entries", &value)) {
          options.space.max_entries = value;
        } else if (ParseKv(tokens[i], "imax", &value)) {
          options.space.max_pages_per_scan = value;
        } else if (ParseKv(tokens[i], "partition_pages", &value)) {
          options.buffer.partition_pages = value;
        } else if (ParseKv(tokens[i], "tuples_per_page", &value)) {
          options.max_tuples_per_page = static_cast<uint16_t>(value);
        } else if (ParseKv(tokens[i], "pool_pages", &value)) {
          options.buffer_pool_pages = value;
        } else {
          return Fail("unknown config key " + tokens[i]);
        }
      }
      catalog_ = std::make_unique<Catalog>(options);
      out_ << "ok: catalog configured\n";
      return true;
    }

    if (command == "create_table") {
      if (tokens.size() != 3) return Fail("create_table NAME INTCOLS");
      const int int_cols = std::stoi(tokens[2]);
      Result<Table*> table = catalog_->CreateTable(
          tokens[1], Schema::PaperSchema(int_cols, 64));
      if (!table.ok()) return Fail(table.status().ToString());
      out_ << "ok: table " << tokens[1] << " with " << int_cols
           << " int columns\n";
      return true;
    }

    if (command == "load_random") {
      if (tokens.size() < 5) return Fail("load_random NAME COUNT LO HI [SEED]");
      Table* table = catalog_->GetTable(tokens[1]);
      if (table == nullptr) return Fail("no table " + tokens[1]);
      const size_t count = std::stoull(tokens[2]);
      const Value lo = std::stoi(tokens[3]);
      const Value hi = std::stoi(tokens[4]);
      Rng rng(tokens.size() > 5 ? std::stoull(tokens[5]) : 1);
      const size_t int_cols = table->schema().IntColumnIds().size();
      for (size_t i = 0; i < count; ++i) {
        std::vector<Value> values;
        for (size_t c = 0; c < int_cols; ++c) {
          values.push_back(static_cast<Value>(rng.UniformInt(lo, hi)));
        }
        Result<Rid> rid =
            catalog_->LoadTuple(table, Tuple(std::move(values), {"row"}));
        if (!rid.ok()) return Fail(rid.status().ToString());
      }
      out_ << "ok: loaded " << count << " tuples into " << tokens[1] << " ("
           << table->PageCount() << " pages)\n";
      return true;
    }

    if (command == "create_index") {
      if (tokens.size() < 5) {
        return Fail("create_index NAME COLUMN LO HI [btree|hash|csb]");
      }
      Table* table = catalog_->GetTable(tokens[1]);
      if (table == nullptr) return Fail("no table " + tokens[1]);
      const ColumnId column = static_cast<ColumnId>(std::stoi(tokens[2]));
      const Status status = catalog_->CreatePartialIndex(
          table, column,
          ValueCoverage::Range(std::stoi(tokens[3]), std::stoi(tokens[4])),
          ParseKind(tokens.size() > 5 ? tokens[5] : "btree"));
      if (!status.ok()) return Fail(status.ToString());
      out_ << "ok: partial index on " << tokens[1] << "." << column
           << " covering [" << tokens[3] << "," << tokens[4] << "]\n";
      return true;
    }

    if (command == "attach_tuner") {
      if (tokens.size() < 3) {
        return Fail("attach_tuner NAME COLUMN [WINDOW THRESHOLD CAPACITY]");
      }
      Table* table = catalog_->GetTable(tokens[1]);
      if (table == nullptr) return Fail("no table " + tokens[1]);
      IndexTunerOptions options;
      if (tokens.size() > 3) options.window_size = std::stoull(tokens[3]);
      if (tokens.size() > 4) options.index_threshold = std::stoi(tokens[4]);
      if (tokens.size() > 5) {
        options.max_indexed_values = std::stoull(tokens[5]);
      }
      const Status status = catalog_->AttachTuner(
          table, static_cast<ColumnId>(std::stoi(tokens[2])), options);
      if (!status.ok()) return Fail(status.ToString());
      out_ << "ok: tuner attached\n";
      return true;
    }

    if (command == "query" || command == "range") {
      const bool is_range = command == "range";
      const size_t base = is_range ? 5u : 4u;
      if (tokens.size() < base) {
        return Fail(is_range ? "range NAME COLUMN LO HI [COLUMN LO HI ...]"
                             : "query NAME COLUMN VALUE [COLUMN LO HI ...]");
      }
      Table* table = catalog_->GetTable(tokens[1]);
      if (table == nullptr) return Fail("no table " + tokens[1]);
      const ColumnId column = static_cast<ColumnId>(std::stoi(tokens[2]));
      const Value lo = std::stoi(tokens[3]);
      const Value hi = is_range ? std::stoi(tokens[4]) : lo;
      Query query = Query::Range(column, lo, hi);
      if (!ParseResiduals(tokens, base, &query)) {
        return Fail("residual predicates must be COLUMN LO HI triplets");
      }
      Result<QueryResult> result = ExecuteQuery(table, query);
      if (!result.ok()) return Fail(result.status().ToString());
      out_ << "rows=" << result->rids.size()
           << " cost=" << result->stats.cost
           << " scanned=" << result->stats.pages_scanned
           << " skipped=" << result->stats.pages_skipped
           << (result->stats.used_partial_index ? " [index]"
               : result->stats.used_index_buffer ? " [buffer]"
                                                 : " [scan]")
           << "\n";
      return true;
    }

    if (command == "explain") {
      if (tokens.size() < 5) {
        return Fail("explain NAME COLUMN LO HI [COLUMN LO HI ...]");
      }
      Table* table = catalog_->GetTable(tokens[1]);
      if (table == nullptr) return Fail("no table " + tokens[1]);
      Query query = Query::Range(static_cast<ColumnId>(std::stoi(tokens[2])),
                                 std::stoi(tokens[3]), std::stoi(tokens[4]));
      if (!ParseResiduals(tokens, 5, &query)) {
        return Fail("residual predicates must be COLUMN LO HI triplets");
      }
      Executor* executor = catalog_->executor(table);
      std::unique_ptr<PhysicalPlan> plan = executor->PlanQuery(query);
      Result<QueryResult> result = executor->ExecutePlan(plan.get());
      if (!result.ok()) return Fail(result.status().ToString());
      out_ << ExplainPlan(*plan);
      out_ << "rows=" << result->rids.size()
           << " cost=" << result->stats.cost << "\n";
      return true;
    }

    if (command == "run") {
      if (tokens.size() < 6) return Fail("run NAME COLUMN COUNT LO HI [SEED]");
      Table* table = catalog_->GetTable(tokens[1]);
      if (table == nullptr) return Fail("no table " + tokens[1]);
      const ColumnId column = static_cast<ColumnId>(std::stoi(tokens[2]));
      const size_t count = std::stoull(tokens[3]);
      const Value lo = std::stoi(tokens[4]);
      const Value hi = std::stoi(tokens[5]);
      Rng rng(tokens.size() > 6 ? std::stoull(tokens[6]) : 7);
      double total_cost = 0;
      for (size_t i = 0; i < count; ++i) {
        // Each query (and each retry attempt) gets a fresh budget; a session
        // deadline bounds the individual queries, not the whole batch.
        Result<QueryResult> result = ExecuteQuery(
            table, Query::Point(column,
                                static_cast<Value>(rng.UniformInt(lo, hi))));
        if (!result.ok()) return Fail(result.status().ToString());
        total_cost += result->stats.cost;
      }
      out_ << "ok: " << count << " queries, mean cost "
           << total_cost / static_cast<double>(count) << "\n";
      return true;
    }

    if (command == "insert") {
      if (tokens.size() < 3) return Fail("insert NAME V1 [V2 ...]");
      Table* table = catalog_->GetTable(tokens[1]);
      if (table == nullptr) return Fail("no table " + tokens[1]);
      std::vector<Value> values;
      for (size_t i = 2; i < tokens.size(); ++i) {
        values.push_back(std::stoi(tokens[i]));
      }
      if (values.size() != table->schema().IntColumnIds().size()) {
        return Fail("value count does not match schema");
      }
      Result<Rid> rid =
          catalog_->Insert(table, Tuple(std::move(values), {"row"}));
      if (!rid.ok()) return Fail(rid.status().ToString());
      out_ << "ok: inserted at " << RidToString(rid.value()) << "\n";
      return true;
    }

    if (command == "update") {
      if (tokens.size() < 5) return Fail("update NAME PAGE SLOT V1 [V2 ...]");
      Table* table = catalog_->GetTable(tokens[1]);
      if (table == nullptr) return Fail("no table " + tokens[1]);
      const Rid rid{static_cast<PageId>(std::stoull(tokens[2])),
                    static_cast<SlotId>(std::stoul(tokens[3]))};
      std::vector<Value> values;
      for (size_t i = 4; i < tokens.size(); ++i) {
        values.push_back(std::stoi(tokens[i]));
      }
      if (values.size() != table->schema().IntColumnIds().size()) {
        return Fail("value count does not match schema");
      }
      Result<Rid> new_rid =
          catalog_->Update(table, rid, Tuple(std::move(values), {"row"}));
      if (!new_rid.ok()) return Fail(new_rid.status().ToString());
      out_ << "ok: updated " << RidToString(rid) << " -> "
           << RidToString(new_rid.value()) << "\n";
      return true;
    }

    if (command == "delete") {
      if (tokens.size() != 4) return Fail("delete NAME PAGE SLOT");
      Table* table = catalog_->GetTable(tokens[1]);
      if (table == nullptr) return Fail("no table " + tokens[1]);
      const Rid rid{static_cast<PageId>(std::stoull(tokens[2])),
                    static_cast<SlotId>(std::stoul(tokens[3]))};
      const Status status = catalog_->Delete(table, rid);
      if (!status.ok()) return Fail(status.ToString());
      out_ << "ok: deleted " << RidToString(rid) << "\n";
      return true;
    }

    if (command == "buffers") {
      if (catalog_->space() == nullptr) {
        out_ << "index buffer space disabled\n";
        return true;
      }
      out_ << "space: " << catalog_->space()->TotalEntries() << " entries";
      if (!catalog_->space()->Unlimited()) {
        out_ << " / " << catalog_->space()->options().max_entries;
      }
      out_ << "\n";
      for (const auto& [index, buffer] : catalog_->space()->buffers()) {
        out_ << "  " << index->table().name() << ".col" << index->column()
             << ": " << buffer->TotalEntries() << " entries, "
             << buffer->PartitionCount() << " partitions, T="
             << buffer->MeanInterval() << "\n";
      }
      return true;
    }

    if (command == "fault") {
      if (tokens.size() < 2) {
        return Fail(
            "fault arm SEED RATE [CORRUPT_FRACTION [LATENCY_RATE "
            "[LATENCY_TICKS]]] | fault off");
      }
      FaultInjector& injector = catalog_->disk().fault_injector();
      if (tokens[1] == "off") {
        injector.Disarm();
        out_ << "ok: faults disarmed\n";
        return true;
      }
      if (tokens[1] != "arm" || tokens.size() < 4) {
        return Fail(
            "fault arm SEED RATE [CORRUPT_FRACTION [LATENCY_RATE "
            "[LATENCY_TICKS]]] | fault off");
      }
      FaultInjectorOptions options;
      options.seed = std::stoull(tokens[2]);
      options.read_fault_rate = std::stod(tokens[3]);
      options.write_fault_rate = options.read_fault_rate;
      if (tokens.size() > 4) options.corruption_fraction = std::stod(tokens[4]);
      if (tokens.size() > 5) options.latency_rate = std::stod(tokens[5]);
      if (tokens.size() > 6) options.latency_ticks = std::stoull(tokens[6]);
      injector.Arm(options);
      out_ << "ok: faults armed seed=" << options.seed
           << " rate=" << options.read_fault_rate << "\n";
      return true;
    }

    if (command == "deadline") {
      if (tokens.size() != 2) return Fail("deadline MS (0 clears)");
      deadline_ = std::chrono::milliseconds(std::stoll(tokens[1]));
      if (deadline_.count() < 0) {
        deadline_ = std::chrono::milliseconds(0);
        return Fail("deadline must be >= 0");
      }
      if (deadline_.count() == 0) {
        out_ << "ok: deadline cleared\n";
      } else {
        out_ << "ok: deadline " << deadline_.count() << " ms\n";
      }
      return true;
    }

    if (command == "stats") {
      out_ << catalog_->metrics().ToString();
      const Metrics& metrics = catalog_->metrics();
      out_ << "robustness: faults_armed="
           << (catalog_->disk().fault_injector().armed() ? "yes" : "no")
           << " faults_injected=" << metrics.Get(kMetricFaultsInjected)
           << " transient_retries=" << metrics.Get(kMetricTransientRetries)
           << " quarantined=" << metrics.Get(kMetricPartitionsQuarantined)
           << " degraded=" << metrics.Get(kMetricDegradedQueries)
           << " timed_out=" << metrics.Get(kMetricQueriesTimedOut)
           << " cancelled=" << metrics.Get(kMetricQueriesCancelled) << "\n";
      return true;
    }

    if (command == "consistency") {
      if (tokens.size() != 2) return Fail("consistency NAME");
      Table* table = catalog_->GetTable(tokens[1]);
      if (table == nullptr) return Fail("no table " + tokens[1]);
      if (catalog_->space() == nullptr) {
        out_ << "ok: no space to check\n";
        return true;
      }
      // The check audits engine state; mask fault injection so it does not
      // roll the dice on its own page reads (mirrors the engine's internal
      // post-quarantine re-check).
      FaultInjector::ScopedSuspend suspend;
      const Status status = CheckSpaceConsistency(*table, *catalog_->space());
      if (!status.ok()) return Fail(status.ToString());
      out_ << "ok: consistent\n";
      return true;
    }

    if (command == "snapshot_save") {
      if (tokens.size() != 2) return Fail("snapshot_save PATH");
      const Status status = catalog_->SaveSnapshot(tokens[1]);
      if (!status.ok()) return Fail(status.ToString());
      out_ << "ok: snapshot saved to " << tokens[1] << "\n";
      return true;
    }

    if (command == "snapshot_load") {
      if (tokens.size() != 2) return Fail("snapshot_load PATH");
      Result<std::unique_ptr<Catalog>> loaded =
          Catalog::LoadSnapshot(tokens[1], catalog_->options());
      if (!loaded.ok()) return Fail(loaded.status().ToString());
      catalog_ = std::move(loaded).value();
      out_ << "ok: snapshot loaded from " << tokens[1] << "\n";
      return true;
    }

    if (command == "echo") {
      for (size_t i = 1; i < tokens.size(); ++i) {
        out_ << (i > 1 ? " " : "") << tokens[i];
      }
      out_ << "\n";
      return true;
    }
  } catch (const std::exception& e) {
    return Fail(std::string("bad argument: ") + e.what());
  }

  return Fail("unknown command " + command);
}

}  // namespace aib::tools
