
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/buffer_partition_test.cc" "tests/CMakeFiles/core_test.dir/core/buffer_partition_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/buffer_partition_test.cc.o.d"
  "/root/repo/tests/core/buffer_space_test.cc" "tests/CMakeFiles/core_test.dir/core/buffer_space_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/buffer_space_test.cc.o.d"
  "/root/repo/tests/core/consistency_test.cc" "tests/CMakeFiles/core_test.dir/core/consistency_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/consistency_test.cc.o.d"
  "/root/repo/tests/core/index_buffer_test.cc" "tests/CMakeFiles/core_test.dir/core/index_buffer_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/index_buffer_test.cc.o.d"
  "/root/repo/tests/core/indexing_scan_test.cc" "tests/CMakeFiles/core_test.dir/core/indexing_scan_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/indexing_scan_test.cc.o.d"
  "/root/repo/tests/core/lru_k_history_test.cc" "tests/CMakeFiles/core_test.dir/core/lru_k_history_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/lru_k_history_test.cc.o.d"
  "/root/repo/tests/core/maintenance_test.cc" "tests/CMakeFiles/core_test.dir/core/maintenance_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/maintenance_test.cc.o.d"
  "/root/repo/tests/core/page_counters_test.cc" "tests/CMakeFiles/core_test.dir/core/page_counters_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/page_counters_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aib_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aib_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aib_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aib_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aib_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aib_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aib_btree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aib_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
