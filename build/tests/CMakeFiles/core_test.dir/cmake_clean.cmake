file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/buffer_partition_test.cc.o"
  "CMakeFiles/core_test.dir/core/buffer_partition_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/buffer_space_test.cc.o"
  "CMakeFiles/core_test.dir/core/buffer_space_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/consistency_test.cc.o"
  "CMakeFiles/core_test.dir/core/consistency_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/index_buffer_test.cc.o"
  "CMakeFiles/core_test.dir/core/index_buffer_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/indexing_scan_test.cc.o"
  "CMakeFiles/core_test.dir/core/indexing_scan_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/lru_k_history_test.cc.o"
  "CMakeFiles/core_test.dir/core/lru_k_history_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/maintenance_test.cc.o"
  "CMakeFiles/core_test.dir/core/maintenance_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/page_counters_test.cc.o"
  "CMakeFiles/core_test.dir/core/page_counters_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
