file(REMOVE_RECURSE
  "CMakeFiles/workload_test.dir/workload/catalog_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/catalog_test.cc.o.d"
  "CMakeFiles/workload_test.dir/workload/correlation_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/correlation_test.cc.o.d"
  "CMakeFiles/workload_test.dir/workload/database_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/database_test.cc.o.d"
  "CMakeFiles/workload_test.dir/workload/snapshot_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/snapshot_test.cc.o.d"
  "CMakeFiles/workload_test.dir/workload/workload_gen_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/workload_gen_test.cc.o.d"
  "CMakeFiles/workload_test.dir/workload/zipf_test.cc.o"
  "CMakeFiles/workload_test.dir/workload/zipf_test.cc.o.d"
  "workload_test"
  "workload_test.pdb"
  "workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
