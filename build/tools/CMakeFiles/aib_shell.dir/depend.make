# Empty dependencies file for aib_shell.
# This may be replaced when dependencies are built.
