file(REMOVE_RECURSE
  "CMakeFiles/aib_shell.dir/aib_shell.cc.o"
  "CMakeFiles/aib_shell.dir/aib_shell.cc.o.d"
  "aib_shell"
  "aib_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aib_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
