file(REMOVE_RECURSE
  "CMakeFiles/aib_shell_lib.dir/shell_session.cc.o"
  "CMakeFiles/aib_shell_lib.dir/shell_session.cc.o.d"
  "libaib_shell_lib.a"
  "libaib_shell_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aib_shell_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
