# Empty compiler generated dependencies file for aib_shell_lib.
# This may be replaced when dependencies are built.
