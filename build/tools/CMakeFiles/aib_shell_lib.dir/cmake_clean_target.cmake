file(REMOVE_RECURSE
  "libaib_shell_lib.a"
)
