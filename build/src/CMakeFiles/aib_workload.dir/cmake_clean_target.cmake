file(REMOVE_RECURSE
  "libaib_workload.a"
)
