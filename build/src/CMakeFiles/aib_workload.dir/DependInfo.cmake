
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/catalog.cc" "src/CMakeFiles/aib_workload.dir/workload/catalog.cc.o" "gcc" "src/CMakeFiles/aib_workload.dir/workload/catalog.cc.o.d"
  "/root/repo/src/workload/correlation.cc" "src/CMakeFiles/aib_workload.dir/workload/correlation.cc.o" "gcc" "src/CMakeFiles/aib_workload.dir/workload/correlation.cc.o.d"
  "/root/repo/src/workload/database.cc" "src/CMakeFiles/aib_workload.dir/workload/database.cc.o" "gcc" "src/CMakeFiles/aib_workload.dir/workload/database.cc.o.d"
  "/root/repo/src/workload/experiment.cc" "src/CMakeFiles/aib_workload.dir/workload/experiment.cc.o" "gcc" "src/CMakeFiles/aib_workload.dir/workload/experiment.cc.o.d"
  "/root/repo/src/workload/snapshot.cc" "src/CMakeFiles/aib_workload.dir/workload/snapshot.cc.o" "gcc" "src/CMakeFiles/aib_workload.dir/workload/snapshot.cc.o.d"
  "/root/repo/src/workload/workload_gen.cc" "src/CMakeFiles/aib_workload.dir/workload/workload_gen.cc.o" "gcc" "src/CMakeFiles/aib_workload.dir/workload/workload_gen.cc.o.d"
  "/root/repo/src/workload/zipf.cc" "src/CMakeFiles/aib_workload.dir/workload/zipf.cc.o" "gcc" "src/CMakeFiles/aib_workload.dir/workload/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aib_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aib_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aib_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aib_btree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aib_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aib_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
