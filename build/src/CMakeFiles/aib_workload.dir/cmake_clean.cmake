file(REMOVE_RECURSE
  "CMakeFiles/aib_workload.dir/workload/catalog.cc.o"
  "CMakeFiles/aib_workload.dir/workload/catalog.cc.o.d"
  "CMakeFiles/aib_workload.dir/workload/correlation.cc.o"
  "CMakeFiles/aib_workload.dir/workload/correlation.cc.o.d"
  "CMakeFiles/aib_workload.dir/workload/database.cc.o"
  "CMakeFiles/aib_workload.dir/workload/database.cc.o.d"
  "CMakeFiles/aib_workload.dir/workload/experiment.cc.o"
  "CMakeFiles/aib_workload.dir/workload/experiment.cc.o.d"
  "CMakeFiles/aib_workload.dir/workload/snapshot.cc.o"
  "CMakeFiles/aib_workload.dir/workload/snapshot.cc.o.d"
  "CMakeFiles/aib_workload.dir/workload/workload_gen.cc.o"
  "CMakeFiles/aib_workload.dir/workload/workload_gen.cc.o.d"
  "CMakeFiles/aib_workload.dir/workload/zipf.cc.o"
  "CMakeFiles/aib_workload.dir/workload/zipf.cc.o.d"
  "libaib_workload.a"
  "libaib_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aib_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
