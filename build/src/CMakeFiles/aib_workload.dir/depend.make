# Empty dependencies file for aib_workload.
# This may be replaced when dependencies are built.
