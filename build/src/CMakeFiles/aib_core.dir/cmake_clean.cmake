file(REMOVE_RECURSE
  "CMakeFiles/aib_core.dir/core/buffer_partition.cc.o"
  "CMakeFiles/aib_core.dir/core/buffer_partition.cc.o.d"
  "CMakeFiles/aib_core.dir/core/buffer_space.cc.o"
  "CMakeFiles/aib_core.dir/core/buffer_space.cc.o.d"
  "CMakeFiles/aib_core.dir/core/consistency.cc.o"
  "CMakeFiles/aib_core.dir/core/consistency.cc.o.d"
  "CMakeFiles/aib_core.dir/core/index_buffer.cc.o"
  "CMakeFiles/aib_core.dir/core/index_buffer.cc.o.d"
  "CMakeFiles/aib_core.dir/core/indexing_scan.cc.o"
  "CMakeFiles/aib_core.dir/core/indexing_scan.cc.o.d"
  "CMakeFiles/aib_core.dir/core/lru_k_history.cc.o"
  "CMakeFiles/aib_core.dir/core/lru_k_history.cc.o.d"
  "CMakeFiles/aib_core.dir/core/maintenance.cc.o"
  "CMakeFiles/aib_core.dir/core/maintenance.cc.o.d"
  "CMakeFiles/aib_core.dir/core/page_counters.cc.o"
  "CMakeFiles/aib_core.dir/core/page_counters.cc.o.d"
  "libaib_core.a"
  "libaib_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aib_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
