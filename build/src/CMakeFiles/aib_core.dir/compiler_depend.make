# Empty compiler generated dependencies file for aib_core.
# This may be replaced when dependencies are built.
