
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/buffer_partition.cc" "src/CMakeFiles/aib_core.dir/core/buffer_partition.cc.o" "gcc" "src/CMakeFiles/aib_core.dir/core/buffer_partition.cc.o.d"
  "/root/repo/src/core/buffer_space.cc" "src/CMakeFiles/aib_core.dir/core/buffer_space.cc.o" "gcc" "src/CMakeFiles/aib_core.dir/core/buffer_space.cc.o.d"
  "/root/repo/src/core/consistency.cc" "src/CMakeFiles/aib_core.dir/core/consistency.cc.o" "gcc" "src/CMakeFiles/aib_core.dir/core/consistency.cc.o.d"
  "/root/repo/src/core/index_buffer.cc" "src/CMakeFiles/aib_core.dir/core/index_buffer.cc.o" "gcc" "src/CMakeFiles/aib_core.dir/core/index_buffer.cc.o.d"
  "/root/repo/src/core/indexing_scan.cc" "src/CMakeFiles/aib_core.dir/core/indexing_scan.cc.o" "gcc" "src/CMakeFiles/aib_core.dir/core/indexing_scan.cc.o.d"
  "/root/repo/src/core/lru_k_history.cc" "src/CMakeFiles/aib_core.dir/core/lru_k_history.cc.o" "gcc" "src/CMakeFiles/aib_core.dir/core/lru_k_history.cc.o.d"
  "/root/repo/src/core/maintenance.cc" "src/CMakeFiles/aib_core.dir/core/maintenance.cc.o" "gcc" "src/CMakeFiles/aib_core.dir/core/maintenance.cc.o.d"
  "/root/repo/src/core/page_counters.cc" "src/CMakeFiles/aib_core.dir/core/page_counters.cc.o" "gcc" "src/CMakeFiles/aib_core.dir/core/page_counters.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aib_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aib_btree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aib_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aib_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
