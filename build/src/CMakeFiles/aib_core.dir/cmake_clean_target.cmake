file(REMOVE_RECURSE
  "libaib_core.a"
)
