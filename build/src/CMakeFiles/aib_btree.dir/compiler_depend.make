# Empty compiler generated dependencies file for aib_btree.
# This may be replaced when dependencies are built.
