
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/btree/btree.cc" "src/CMakeFiles/aib_btree.dir/btree/btree.cc.o" "gcc" "src/CMakeFiles/aib_btree.dir/btree/btree.cc.o.d"
  "/root/repo/src/btree/csb_tree.cc" "src/CMakeFiles/aib_btree.dir/btree/csb_tree.cc.o" "gcc" "src/CMakeFiles/aib_btree.dir/btree/csb_tree.cc.o.d"
  "/root/repo/src/btree/hash_index.cc" "src/CMakeFiles/aib_btree.dir/btree/hash_index.cc.o" "gcc" "src/CMakeFiles/aib_btree.dir/btree/hash_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aib_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
