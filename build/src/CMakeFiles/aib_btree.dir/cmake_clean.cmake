file(REMOVE_RECURSE
  "CMakeFiles/aib_btree.dir/btree/btree.cc.o"
  "CMakeFiles/aib_btree.dir/btree/btree.cc.o.d"
  "CMakeFiles/aib_btree.dir/btree/csb_tree.cc.o"
  "CMakeFiles/aib_btree.dir/btree/csb_tree.cc.o.d"
  "CMakeFiles/aib_btree.dir/btree/hash_index.cc.o"
  "CMakeFiles/aib_btree.dir/btree/hash_index.cc.o.d"
  "libaib_btree.a"
  "libaib_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aib_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
