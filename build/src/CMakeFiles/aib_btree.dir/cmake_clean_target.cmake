file(REMOVE_RECURSE
  "libaib_btree.a"
)
