# Empty dependencies file for aib_storage.
# This may be replaced when dependencies are built.
