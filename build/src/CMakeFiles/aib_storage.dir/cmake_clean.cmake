file(REMOVE_RECURSE
  "CMakeFiles/aib_storage.dir/storage/buffer_pool.cc.o"
  "CMakeFiles/aib_storage.dir/storage/buffer_pool.cc.o.d"
  "CMakeFiles/aib_storage.dir/storage/disk_manager.cc.o"
  "CMakeFiles/aib_storage.dir/storage/disk_manager.cc.o.d"
  "CMakeFiles/aib_storage.dir/storage/heap_file.cc.o"
  "CMakeFiles/aib_storage.dir/storage/heap_file.cc.o.d"
  "CMakeFiles/aib_storage.dir/storage/page.cc.o"
  "CMakeFiles/aib_storage.dir/storage/page.cc.o.d"
  "CMakeFiles/aib_storage.dir/storage/schema.cc.o"
  "CMakeFiles/aib_storage.dir/storage/schema.cc.o.d"
  "CMakeFiles/aib_storage.dir/storage/table.cc.o"
  "CMakeFiles/aib_storage.dir/storage/table.cc.o.d"
  "CMakeFiles/aib_storage.dir/storage/tuple.cc.o"
  "CMakeFiles/aib_storage.dir/storage/tuple.cc.o.d"
  "libaib_storage.a"
  "libaib_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aib_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
