file(REMOVE_RECURSE
  "libaib_storage.a"
)
