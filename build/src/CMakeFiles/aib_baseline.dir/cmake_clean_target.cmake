file(REMOVE_RECURSE
  "libaib_baseline.a"
)
