file(REMOVE_RECURSE
  "CMakeFiles/aib_baseline.dir/baseline/shinobi.cc.o"
  "CMakeFiles/aib_baseline.dir/baseline/shinobi.cc.o.d"
  "libaib_baseline.a"
  "libaib_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aib_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
