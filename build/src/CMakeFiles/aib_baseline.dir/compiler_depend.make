# Empty compiler generated dependencies file for aib_baseline.
# This may be replaced when dependencies are built.
