
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/index_tuner.cc" "src/CMakeFiles/aib_index.dir/index/index_tuner.cc.o" "gcc" "src/CMakeFiles/aib_index.dir/index/index_tuner.cc.o.d"
  "/root/repo/src/index/partial_index.cc" "src/CMakeFiles/aib_index.dir/index/partial_index.cc.o" "gcc" "src/CMakeFiles/aib_index.dir/index/partial_index.cc.o.d"
  "/root/repo/src/index/value_coverage.cc" "src/CMakeFiles/aib_index.dir/index/value_coverage.cc.o" "gcc" "src/CMakeFiles/aib_index.dir/index/value_coverage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aib_btree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aib_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aib_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
