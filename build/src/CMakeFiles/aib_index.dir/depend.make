# Empty dependencies file for aib_index.
# This may be replaced when dependencies are built.
