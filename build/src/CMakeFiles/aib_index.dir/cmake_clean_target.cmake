file(REMOVE_RECURSE
  "libaib_index.a"
)
