file(REMOVE_RECURSE
  "CMakeFiles/aib_index.dir/index/index_tuner.cc.o"
  "CMakeFiles/aib_index.dir/index/index_tuner.cc.o.d"
  "CMakeFiles/aib_index.dir/index/partial_index.cc.o"
  "CMakeFiles/aib_index.dir/index/partial_index.cc.o.d"
  "CMakeFiles/aib_index.dir/index/value_coverage.cc.o"
  "CMakeFiles/aib_index.dir/index/value_coverage.cc.o.d"
  "libaib_index.a"
  "libaib_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aib_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
