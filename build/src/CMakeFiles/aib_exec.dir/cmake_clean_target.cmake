file(REMOVE_RECURSE
  "libaib_exec.a"
)
