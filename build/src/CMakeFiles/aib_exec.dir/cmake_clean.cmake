file(REMOVE_RECURSE
  "CMakeFiles/aib_exec.dir/exec/cost_model.cc.o"
  "CMakeFiles/aib_exec.dir/exec/cost_model.cc.o.d"
  "CMakeFiles/aib_exec.dir/exec/executor.cc.o"
  "CMakeFiles/aib_exec.dir/exec/executor.cc.o.d"
  "libaib_exec.a"
  "libaib_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aib_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
