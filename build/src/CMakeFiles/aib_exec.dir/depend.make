# Empty dependencies file for aib_exec.
# This may be replaced when dependencies are built.
