file(REMOVE_RECURSE
  "CMakeFiles/aib_common.dir/common/ascii_chart.cc.o"
  "CMakeFiles/aib_common.dir/common/ascii_chart.cc.o.d"
  "CMakeFiles/aib_common.dir/common/csv_writer.cc.o"
  "CMakeFiles/aib_common.dir/common/csv_writer.cc.o.d"
  "CMakeFiles/aib_common.dir/common/histogram.cc.o"
  "CMakeFiles/aib_common.dir/common/histogram.cc.o.d"
  "CMakeFiles/aib_common.dir/common/logging.cc.o"
  "CMakeFiles/aib_common.dir/common/logging.cc.o.d"
  "CMakeFiles/aib_common.dir/common/metrics.cc.o"
  "CMakeFiles/aib_common.dir/common/metrics.cc.o.d"
  "CMakeFiles/aib_common.dir/common/rng.cc.o"
  "CMakeFiles/aib_common.dir/common/rng.cc.o.d"
  "CMakeFiles/aib_common.dir/common/status.cc.o"
  "CMakeFiles/aib_common.dir/common/status.cc.o.d"
  "libaib_common.a"
  "libaib_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aib_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
