# Empty compiler generated dependencies file for aib_common.
# This may be replaced when dependencies are built.
