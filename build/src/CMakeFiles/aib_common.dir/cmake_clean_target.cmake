file(REMOVE_RECURSE
  "libaib_common.a"
)
