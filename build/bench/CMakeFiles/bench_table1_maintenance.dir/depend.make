# Empty dependencies file for bench_table1_maintenance.
# This may be replaced when dependencies are built.
