# Empty compiler generated dependencies file for bench_fig3_fully_indexed.
# This may be replaced when dependencies are built.
