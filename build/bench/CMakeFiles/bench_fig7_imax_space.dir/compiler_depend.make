# Empty compiler generated dependencies file for bench_fig7_imax_space.
# This may be replaced when dependencies are built.
