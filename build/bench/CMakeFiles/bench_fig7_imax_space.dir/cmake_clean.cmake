file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_imax_space.dir/bench_fig7_imax_space.cc.o"
  "CMakeFiles/bench_fig7_imax_space.dir/bench_fig7_imax_space.cc.o.d"
  "bench_fig7_imax_space"
  "bench_fig7_imax_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_imax_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
