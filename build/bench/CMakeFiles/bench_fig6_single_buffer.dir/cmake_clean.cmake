file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_single_buffer.dir/bench_fig6_single_buffer.cc.o"
  "CMakeFiles/bench_fig6_single_buffer.dir/bench_fig6_single_buffer.cc.o.d"
  "bench_fig6_single_buffer"
  "bench_fig6_single_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_single_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
