
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig6_single_buffer.cc" "bench/CMakeFiles/bench_fig6_single_buffer.dir/bench_fig6_single_buffer.cc.o" "gcc" "bench/CMakeFiles/bench_fig6_single_buffer.dir/bench_fig6_single_buffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aib_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aib_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aib_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aib_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aib_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aib_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aib_btree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/aib_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
