# Empty compiler generated dependencies file for bench_fig6_single_buffer.
# This may be replaced when dependencies are built.
