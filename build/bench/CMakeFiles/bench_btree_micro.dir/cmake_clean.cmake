file(REMOVE_RECURSE
  "CMakeFiles/bench_btree_micro.dir/bench_btree_micro.cc.o"
  "CMakeFiles/bench_btree_micro.dir/bench_btree_micro.cc.o.d"
  "bench_btree_micro"
  "bench_btree_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_btree_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
