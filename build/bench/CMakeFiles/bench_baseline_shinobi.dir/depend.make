# Empty dependencies file for bench_baseline_shinobi.
# This may be replaced when dependencies are built.
