file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_shinobi.dir/bench_baseline_shinobi.cc.o"
  "CMakeFiles/bench_baseline_shinobi.dir/bench_baseline_shinobi.cc.o.d"
  "bench_baseline_shinobi"
  "bench_baseline_shinobi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_shinobi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
