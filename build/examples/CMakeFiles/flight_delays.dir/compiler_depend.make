# Empty compiler generated dependencies file for flight_delays.
# This may be replaced when dependencies are built.
