file(REMOVE_RECURSE
  "CMakeFiles/flight_delays.dir/flight_delays.cpp.o"
  "CMakeFiles/flight_delays.dir/flight_delays.cpp.o.d"
  "flight_delays"
  "flight_delays.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flight_delays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
