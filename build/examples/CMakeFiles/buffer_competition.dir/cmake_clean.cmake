file(REMOVE_RECURSE
  "CMakeFiles/buffer_competition.dir/buffer_competition.cpp.o"
  "CMakeFiles/buffer_competition.dir/buffer_competition.cpp.o.d"
  "buffer_competition"
  "buffer_competition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffer_competition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
