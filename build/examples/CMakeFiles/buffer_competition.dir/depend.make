# Empty dependencies file for buffer_competition.
# This may be replaced when dependencies are built.
