// Ablation B: the page-selection policy of Algorithm 2.
//
// The paper prescribes indexing pages in *ascending* counter order: "pages
// with many already indexed tuples are more valuable for the Index Buffer"
// — the same number of skippable pages is achieved with fewer buffer
// entries (§III). This bench replays Experiment 1 under a tight space
// bound with three policies and reports skippable pages per buffer entry,
// the metric the design choice optimizes.

#include <iostream>

#include "bench_util.h"
#include "common/csv_writer.h"

namespace aib {
namespace {

struct PolicyResult {
  size_t final_entries = 0;
  size_t final_skipped = 0;
  double mean_cost_tail = 0;
};

Result<PolicyResult> RunOne(const bench::BenchArgs& args,
                            PageSelectionPolicy policy) {
  PaperSetupOptions setup = bench::PaperSetup(args);
  // Tight bound: ~25% of the uncovered entries. Under a budget, entry
  // efficiency decides how many pages become skippable.
  setup.db.space.max_entries = args.num_tuples * 9 / 10 / 4;
  setup.db.space.selection_policy = policy;
  setup.db.space.seed = args.seed;
  setup.db.buffer.partition_pages = args.num_tuples / 280;
  AIB_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                       BuildPaperDatabase(setup));

  PhaseSpec phase;
  phase.num_queries = 60;
  phase.mix = {bench::PaperMix(0)};
  WorkloadGenerator gen({phase}, args.seed);
  AIB_ASSIGN_OR_RETURN(std::vector<SeriesPoint> series,
                       RunWorkload(db.get(), &gen));

  PolicyResult result;
  result.final_entries = series.back().buffer_entries[0];
  result.final_skipped = series.back().stats.pages_skipped;
  double sum = 0;
  for (size_t i = 40; i < series.size(); ++i) sum += series[i].stats.cost;
  result.mean_cost_tail = sum / 20.0;
  return result;
}

int Run(const bench::BenchArgs& args) {
  struct Row {
    std::string label;
    PageSelectionPolicy policy;
  };
  const std::vector<Row> rows = {
      {"counter-ascending (paper)", PageSelectionPolicy::kCounterAscending},
      {"random", PageSelectionPolicy::kRandom},
      {"counter-descending", PageSelectionPolicy::kCounterDescending},
  };

  ConsoleTable table({"policy", "entries", "pages skipped",
                      "pages/1k entries", "tail mean cost"});
  for (const Row& row : rows) {
    Result<PolicyResult> r = RunOne(args, row.policy);
    if (!r.ok()) {
      std::cerr << r.status().ToString() << "\n";
      return 1;
    }
    const double efficiency =
        r->final_entries == 0
            ? 0
            : static_cast<double>(r->final_skipped) /
                  (static_cast<double>(r->final_entries) / 1000.0);
    table.AddRow({row.label, std::to_string(r->final_entries),
                  std::to_string(r->final_skipped),
                  FormatDouble(efficiency, 1),
                  FormatDouble(r->mean_cost_tail, 1)});
  }

  std::cout << "Ablation B — Algorithm 2 page-selection policy under a "
               "tight space bound (25% of uncovered entries)\n\n";
  table.Print(std::cout);
  std::cout << "\nShape check: counter-ascending should dominate "
               "pages-skipped-per-entry (and therefore tail cost); "
               "counter-descending is the worst case. With uniform data "
               "the gap is modest; it widens when counters vary (partially "
               "covered pages).\n";
  return 0;
}

}  // namespace
}  // namespace aib

int main(int argc, char** argv) {
  return aib::Run(aib::bench::ParseArgs(argc, argv));
}
