// Figure 7 (Experiment 2): the influence of I_MAX and of the Index Buffer
// Space bound L on a single Index Buffer.
//
// Same setting as Experiment 1, but sweeping (a) I_MAX with unlimited
// space and (b) the space bound L with I_MAX = 5,000.
//
// Expected shape: higher I_MAX makes the per-query cost drop faster within
// the first ~15 queries (more aggressive indexing); a smaller L caps the
// number of skippable pages and therefore the converged speedup.

#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/csv_writer.h"

namespace aib {
namespace {

struct SweepResult {
  std::string label;
  std::vector<double> costs;        // per query
  size_t final_entries = 0;
  size_t final_skipped = 0;
};

Result<SweepResult> RunOne(const bench::BenchArgs& args, std::string label,
                           size_t imax, size_t space_bound) {
  PaperSetupOptions setup = bench::PaperSetup(args);
  setup.db.space.max_entries = space_bound;
  setup.db.space.max_pages_per_scan = imax;
  setup.db.buffer.partition_pages = 10000;
  AIB_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                       BuildPaperDatabase(setup));

  PhaseSpec phase;
  phase.num_queries = 60;
  phase.mix = {bench::PaperMix(0)};
  WorkloadGenerator gen({phase}, args.seed);
  AIB_ASSIGN_OR_RETURN(std::vector<SeriesPoint> series,
                       RunWorkload(db.get(), &gen));

  SweepResult result;
  result.label = std::move(label);
  for (const SeriesPoint& point : series) {
    result.costs.push_back(point.stats.cost);
  }
  result.final_entries = series.back().buffer_entries[0];
  result.final_skipped = series.back().stats.pages_skipped;
  return result;
}

int Run(const bench::BenchArgs& args) {
  // Scale the sweep values with the table size so the paper's relative
  // regimes are preserved at every scale (the paper's 5,000 pages ~ 28% of
  // its ~18k-page table).
  const size_t pages_estimate = args.num_tuples / 28;
  const std::vector<size_t> imax_values = {
      pages_estimate / 32, pages_estimate / 8, pages_estimate / 2,
      pages_estimate * 2};
  const size_t entries_estimate = args.num_tuples * 9 / 10;
  const std::vector<size_t> space_values = {
      entries_estimate / 8, entries_estimate / 4, entries_estimate / 2, 0};

  std::vector<SweepResult> results;
  for (size_t imax : imax_values) {
    Result<SweepResult> r = RunOne(args, "IMAX=" + std::to_string(imax),
                                   imax, /*space_bound=*/0);
    if (!r.ok()) {
      std::cerr << r.status().ToString() << "\n";
      return 1;
    }
    results.push_back(std::move(r).value());
  }
  for (size_t space : space_values) {
    Result<SweepResult> r = RunOne(
        args, space == 0 ? "L=unlimited" : "L=" + std::to_string(space),
        /*imax=*/pages_estimate / 2, space);
    if (!r.ok()) {
      std::cerr << r.status().ToString() << "\n";
      return 1;
    }
    results.push_back(std::move(r).value());
  }

  auto csv = bench::OpenCsv(args);
  CsvWriter csv_writer(csv != nullptr ? *csv : std::cout);
  if (csv != nullptr) {
    csv_writer.WriteHeader({"series", "query", "cost_units"});
    for (const SweepResult& result : results) {
      for (size_t q = 0; q < result.costs.size(); ++q) {
        csv_writer.Row(result.label, q, FormatDouble(result.costs[q], 3));
      }
    }
  }

  ConsoleTable table({"series", "q0", "q2", "q5", "q10", "q15", "q30",
                      "q59", "entries", "skipped"});
  for (const SweepResult& result : results) {
    auto cost_at = [&](size_t q) { return FormatDouble(result.costs[q], 0); };
    table.AddRow({result.label, cost_at(0), cost_at(2), cost_at(5),
                  cost_at(10), cost_at(15), cost_at(30), cost_at(59),
                  std::to_string(result.final_entries),
                  std::to_string(result.final_skipped)});
  }

  std::cout << "Figure 7 — Single Index Buffer: varying I_MAX (unlimited "
               "space) and varying space bound L (fixed I_MAX)\n"
            << "(cost units per query; 60 queries on column A)\n\n";
  table.Print(std::cout);
  std::cout << "\nShape check: larger I_MAX -> the cost column reaches its "
               "floor at smaller q (more aggressive); smaller L -> higher "
               "converged cost and fewer skipped pages (the space bound "
               "caps the benefit).\n";
  return 0;
}

}  // namespace
}  // namespace aib

int main(int argc, char** argv) {
  return aib::Run(aib::bench::ParseArgs(argc, argv));
}
