// Figure 6 (Experiment 1): a single Index Buffer with unlimited Index
// Buffer Space.
//
// The paper's setting: the common data setup (§V), 200 point queries on
// unindexed values of column A, unlimited space, I_MAX = 5,000, P = 10,000.
// Per query the paper plots the runtime, the total number of Index Buffer
// entries, and the number of pages skipped; reference lines show the plain
// table-scan and the index-scan runtime levels.
//
// Expected shape: the first queries pay roughly a table scan (plus a small
// indexing overhead); within ~20 queries the whole table is fully indexed,
// every page is skipped, and the runtime settles at the index-scan level.

#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "common/ascii_chart.h"
#include "common/csv_writer.h"
#include "common/histogram.h"

namespace aib {
namespace {

int Run(const bench::BenchArgs& args) {
  PaperSetupOptions setup = bench::PaperSetup(args);
  setup.db.space.max_entries = 0;  // unlimited
  // The paper's I_MAX = 5,000 and P = 10,000 pages, scaled with the table
  // so the convergence shape (fully indexed after ~20 queries) is
  // preserved at every scale.
  const size_t imax = std::max<size_t>(1, args.num_tuples / 100);
  setup.db.space.max_pages_per_scan = imax;
  setup.db.buffer.partition_pages = std::max<size_t>(1, args.num_tuples / 50);
  Result<std::unique_ptr<Database>> db_or = BuildPaperDatabase(setup);
  if (!db_or.ok()) {
    std::cerr << "setup failed: " << db_or.status().ToString() << "\n";
    return 1;
  }
  std::unique_ptr<Database> db = std::move(db_or).value();

  // Reference levels.
  Result<QueryResult> scan_ref = db->FullScan(Query::Point(0, 25000));
  Result<QueryResult> index_ref = db->IndexScan(Query::Point(0, 2500));
  if (!scan_ref.ok() || !index_ref.ok()) {
    std::cerr << "baseline failed\n";
    return 1;
  }

  PhaseSpec phase;
  phase.num_queries = 200;
  phase.mix = {bench::PaperMix(0)};
  WorkloadGenerator gen({phase}, args.seed);
  Result<std::vector<SeriesPoint>> series_or = RunWorkload(db.get(), &gen);
  if (!series_or.ok()) {
    std::cerr << "workload failed: " << series_or.status().ToString() << "\n";
    return 1;
  }
  const std::vector<SeriesPoint>& series = series_or.value();

  auto csv = bench::OpenCsv(args);
  CsvWriter csv_writer(csv != nullptr ? *csv : std::cout);
  if (csv != nullptr) {
    csv_writer.WriteHeader({"query", "cost_units", "wall_us",
                            "buffer_entries", "pages_skipped",
                            "pages_scanned"});
    for (const SeriesPoint& point : series) {
      csv_writer.Row(point.query_index, FormatDouble(point.stats.cost, 3),
                     point.stats.wall_ns / 1000, point.buffer_entries[0],
                     point.stats.pages_skipped, point.stats.pages_scanned);
    }
  }

  ConsoleTable table({"query", "cost", "wall_us", "entries", "skipped",
                      "scanned"});
  for (const SeriesPoint& point : series) {
    const size_t q = point.query_index;
    if (q < 5 || q == 9 || q == 14 || q == 19 || q == 29 || q == 49 ||
        q == 99 || q == 199) {
      table.AddRow({std::to_string(q), FormatDouble(point.stats.cost, 1),
                    std::to_string(point.stats.wall_ns / 1000),
                    std::to_string(point.buffer_entries[0]),
                    std::to_string(point.stats.pages_skipped),
                    std::to_string(point.stats.pages_scanned)});
    }
  }

  std::cout << "Figure 6 — Single Index Buffer, unlimited space (I_MAX="
            << imax << ", P=" << args.num_tuples / 50
            << "), 200 queries on column A\n\n"
            << "reference: full table scan cost = "
            << FormatDouble(scan_ref->stats.cost, 2)
            << " (wall " << scan_ref->stats.wall_ns / 1000 << " us), "
            << "index scan cost = "
            << FormatDouble(index_ref->stats.cost, 2) << " (wall "
            << index_ref->stats.wall_ns / 1000 << " us)\n\n";
  table.Print(std::cout);

  std::vector<double> costs;
  costs.reserve(series.size());
  for (const SeriesPoint& point : series) costs.push_back(point.stats.cost);
  AsciiChart::Options chart;
  chart.log_y = true;
  std::cout << "\ncost per query (log scale, x = query 0.."
            << series.size() - 1 << "):\n"
            << AsciiChart::Render(costs, chart);

  Histogram cost_hist;
  Histogram wall_us_hist;
  for (const SeriesPoint& point : series) {
    cost_hist.Add(point.stats.cost);
    wall_us_hist.Add(static_cast<double>(point.stats.wall_ns) / 1000.0);
  }
  std::cout << "\ncost distribution:    " << cost_hist.Summary()
            << "\nwall-time (us) dist:  " << wall_us_hist.Summary() << "\n";

  const SeriesPoint& last = series.back();
  std::cout << "\nShape check: cost should drop below the table-scan level "
               "within a few queries and settle near the index-scan level; "
               "with unlimited space all pages end up skipped.\n"
            << "converged: cost=" << FormatDouble(last.stats.cost, 2)
            << ", skipped=" << last.stats.pages_skipped << "/"
            << db->table().PageCount()
            << ", speedup vs table scan = "
            << FormatDouble(scan_ref->stats.cost / last.stats.cost, 1)
            << "x\n";
  return 0;
}

}  // namespace
}  // namespace aib

int main(int argc, char** argv) {
  return aib::Run(aib::bench::ParseArgs(argc, argv));
}
