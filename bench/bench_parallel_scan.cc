// Perf + correctness gate for the morsel-parallel batch scan path.
//
// Three measurements over a scan-dominated workload (full plain scan of a
// table with a ~2% selective predicate, everything buffer-pool resident so
// the comparison is CPU-bound):
//
//   tuple     — the pre-batch per-tuple loop (ForEachTupleOnPage + branchy
//               predicate), inlined here as the baseline;
//   serial    — MorselPlainScan without a dispatcher (batch kernels, one
//               thread);
//   parallel  — MorselPlainScan with a MorselDispatcher at --workers.
//
// Each is the median of --reps repetitions after one warmup run
// (bench::MedianWallMs). Regression gates with --check:
//
//   1. determinism (always): rids and every deterministic counter must be
//      bit-identical between the serial run and parallel runs at worker
//      counts {2, 4, 8}, for the plain scan AND the indexing scan — the
//      latter also under a page-targeted injected read fault (the chaos
//      case), including the failure report and the Index Buffer state.
//   2. serial batch path must not be slower than the tuple path by >5%.
//   3. at 4+ workers on a 4+-core machine, parallel must be >= 2x serial
//      (skipped and reported as such on smaller machines — this container
//      check still runs gate 1 and 2 there).
//
// --json=PATH emits the numbers for CI artifacts (BENCH_parallel_scan.json).

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>
#include <unordered_set>
#include <vector>

#include "bench_util.h"
#include "common/csv_writer.h"
#include "common/rng.h"
#include "core/index_buffer.h"
#include "core/indexing_scan.h"
#include "exec/morsel.h"
#include "index/partial_index.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/table.h"

namespace aib {
namespace {

constexpr Value kValueMin = 1;
constexpr Value kValueMax = 50000;
constexpr Value kCoveredHi = 5000;

/// One self-contained database world. Chaos runs need a fresh one per
/// repetition AND a pool smaller than the table: injected faults are
/// one-shot against the DiskManager, so the target page must actually be
/// read from disk — a pool that still holds it from the coverage-counter
/// initialization scan would serve it without touching the injector.
struct World {
  DiskManager disk;
  BufferPool pool;
  Table table;
  std::unique_ptr<PartialIndex> index;

  World(size_t num_tuples, uint64_t seed, size_t pool_frames)
      : disk(8192),
        pool(&disk, pool_frames),
        table("t", Schema::PaperSchema(1, 16), &disk, &pool,
              HeapFileOptions{.max_tuples_per_page = 20}) {
    Rng rng(seed);
    for (size_t i = 0; i < num_tuples; ++i) {
      table.Insert(Tuple({static_cast<Value>(
                             rng.UniformInt(kValueMin, kValueMax))},
                         {"pay"}))
          .value();
    }
    index = std::make_unique<PartialIndex>(
        &table, 0, ValueCoverage::Range(kValueMin, kCoveredHi));
    index->Build().ok() || (std::abort(), true);
  }
};

/// The pre-batch scan loop, kept verbatim as the baseline the batch path
/// races against.
Status TupleScan(const Table& table, const ColumnPredicate& pred,
                 std::vector<Rid>* out, size_t* pages_scanned) {
  for (size_t page = 0; page < table.PageCount(); ++page) {
    AIB_RETURN_IF_ERROR(table.heap().ForEachTupleOnPage(
        page, [&](const Rid& rid, const Tuple& tuple) {
          if (pred.Matches(tuple.IntValue(table.schema(), 0))) {
            out->push_back(rid);
          }
        }));
    ++*pages_scanned;
  }
  return Status::Ok();
}

ExecContext MakeContext(const Table& table, MorselDispatcher* dispatcher) {
  ExecContext ctx;
  ctx.table = &table;
  ctx.dispatcher = dispatcher;
  return ctx;
}

struct IndexingRun {
  Status status = Status::Ok();
  std::vector<Rid> rids;
  IndexingScanStats stats;
  IndexingScanFailure failure;
  size_t total_entries = 0;
  size_t partition_count = 0;
  std::vector<uint32_t> counters;
};

/// Runs the indexing-scan leg on a fresh world at `workers`, optionally
/// with a one-shot read fault injected on page `fault_page`.
IndexingRun RunIndexingLeg(size_t num_tuples, uint64_t seed, size_t workers,
                           std::optional<size_t> fault_page) {
  // 256 frames << page count: the sequential counter-initialization scan
  // cycles the LRU, so by scan time every page (the fault target included)
  // is a real disk read.
  World world(num_tuples, seed, /*pool_frames=*/256);
  IndexBufferOptions options;
  options.partition_pages = std::max<size_t>(1, world.table.PageCount() / 8);
  IndexBuffer buffer(world.index.get(), options);
  buffer.InitCounters().ok() || (std::abort(), true);

  std::unordered_set<size_t> selected;
  for (size_t p = 0; p < world.table.PageCount(); ++p) {
    if (buffer.counters().Get(p) > 0) selected.insert(p);
  }
  buffer.SetReserveHints(
      std::vector<size_t>(selected.begin(), selected.end()));

  if (fault_page.has_value()) {
    world.disk.fault_injector().InjectPageFault(
        FaultOp::kRead, world.table.heap().page_ids()[*fault_page],
        FaultKind::kCorruption);
  }

  std::unique_ptr<MorselDispatcher> dispatcher;
  if (workers > 1) dispatcher = std::make_unique<MorselDispatcher>(workers - 1);
  ExecContext ctx = MakeContext(world.table, dispatcher.get());
  ctx.parallel.min_pages_for_parallel = 1;

  IndexingRun run;
  std::vector<ColumnPredicate> predicates = {
      {0, kCoveredHi + 1, kCoveredHi + 1000}};
  run.status = MorselIndexingScan(world.table, &buffer, selected, predicates,
                                  ctx, &run.rids, &run.stats, &run.failure);
  run.total_entries = buffer.TotalEntries();
  run.partition_count = buffer.PartitionCount();
  run.counters.reserve(world.table.PageCount());
  for (size_t p = 0; p < world.table.PageCount(); ++p) {
    run.counters.push_back(buffer.counters().Get(p));
  }
  return run;
}

bool SameRun(const IndexingRun& a, const IndexingRun& b, std::string* why) {
  auto fail = [&](const char* what) {
    *why = what;
    return false;
  };
  if (a.status.ToString() != b.status.ToString()) return fail("status");
  if (a.rids != b.rids) return fail("rids");
  if (a.stats.pages_scanned != b.stats.pages_scanned) return fail("pages_scanned");
  if (a.stats.pages_skipped != b.stats.pages_skipped) return fail("pages_skipped");
  if (a.stats.entries_added != b.stats.entries_added) return fail("entries_added");
  if (a.stats.buffer_matches != b.stats.buffer_matches) return fail("buffer_matches");
  if (a.failure.failed != b.failure.failed) return fail("failure.failed");
  if (a.failure.page != b.failure.page) return fail("failure.page");
  if (a.failure.counter_before != b.failure.counter_before) {
    return fail("failure.counter_before");
  }
  if (a.total_entries != b.total_entries) return fail("total_entries");
  if (a.partition_count != b.partition_count) return fail("partition_count");
  if (a.counters != b.counters) return fail("counters");
  return true;
}

int Run(const bench::BenchArgs& args) {
  const size_t hw = std::thread::hardware_concurrency();
  // Capacity above the page count: after warmup every page is resident and
  // the timed comparison is the CPU cost of the scan kernels.
  World world(args.num_tuples, args.seed, args.num_tuples / 10 + 64);
  const size_t pages = world.table.PageCount();
  const ColumnPredicate pred = {0, kCoveredHi + 1, kCoveredHi + 1000};

  std::cout << "Parallel-scan bench — " << args.num_tuples << " tuples, "
            << pages << " pages, workers=" << args.workers
            << ", reps=" << args.reps << ", hw_concurrency=" << hw << "\n\n";

  // --- Timing ---------------------------------------------------------------
  std::vector<Rid> scratch;
  size_t scratch_pages = 0;
  const double tuple_ms = bench::MedianWallMs(args.reps, [&] {
    scratch.clear();
    scratch_pages = 0;
    TupleScan(world.table, pred, &scratch, &scratch_pages).ok() || (std::abort(), true);
  });
  const std::vector<Rid> tuple_rids = scratch;

  ExecContext serial_ctx = MakeContext(world.table, nullptr);
  const double serial_ms = bench::MedianWallMs(args.reps, [&] {
    scratch.clear();
    scratch_pages = 0;
    MorselPlainScan(world.table, {pred}, serial_ctx, &scratch, &scratch_pages)
        .ok() || (std::abort(), true);
  });
  const std::vector<Rid> serial_rids = scratch;

  MorselDispatcher dispatcher(args.workers > 0 ? args.workers - 1 : 0);
  ExecContext parallel_ctx = MakeContext(world.table, &dispatcher);
  const double parallel_ms = bench::MedianWallMs(args.reps, [&] {
    scratch.clear();
    scratch_pages = 0;
    MorselPlainScan(world.table, {pred}, parallel_ctx, &scratch,
                    &scratch_pages)
        .ok() || (std::abort(), true);
  });
  const std::vector<Rid> parallel_rids = scratch;

  const double batch_vs_tuple = serial_ms / tuple_ms;
  const double speedup = serial_ms / parallel_ms;
  std::printf("tuple path:     %8.3f ms\n", tuple_ms);
  std::printf("batch serial:   %8.3f ms  (%.3fx of tuple)\n", serial_ms,
              batch_vs_tuple);
  std::printf("batch %zu-way:    %8.3f ms  (%.2fx vs serial)\n\n",
              args.workers, parallel_ms, speedup);

  // --- Determinism ----------------------------------------------------------
  bool determinism_ok =
      tuple_rids == serial_rids && serial_rids == parallel_rids;
  if (!determinism_ok) {
    std::cout << "plain-scan rids differ between paths\n";
  }
  bool chaos_ok = true;
  const IndexingRun clean_ref =
      RunIndexingLeg(args.num_tuples, args.seed, 1, std::nullopt);
  const IndexingRun chaos_ref =
      RunIndexingLeg(args.num_tuples, args.seed, 1, pages / 2);
  if (!chaos_ref.failure.failed) {
    std::cout << "chaos reference run did not observe the injected fault\n";
    chaos_ok = false;
  }
  for (size_t workers : {size_t{2}, size_t{4}, size_t{8}}) {
    std::string why;
    const IndexingRun clean =
        RunIndexingLeg(args.num_tuples, args.seed, workers, std::nullopt);
    if (!SameRun(clean_ref, clean, &why)) {
      std::cout << "indexing scan @" << workers << " workers differs: " << why
                << "\n";
      determinism_ok = false;
    }
    const IndexingRun chaos =
        RunIndexingLeg(args.num_tuples, args.seed, workers, pages / 2);
    if (!SameRun(chaos_ref, chaos, &why)) {
      std::cout << "chaos indexing scan @" << workers
                << " workers differs: " << why << "\n";
      chaos_ok = false;
    }
  }
  std::cout << "determinism (serial == parallel, all counters): "
            << (determinism_ok ? "OK" : "FAIL") << "\n"
            << "chaos determinism (injected fault, identical prefix): "
            << (chaos_ok ? "OK" : "FAIL") << "\n\n";

  // --- Gates ----------------------------------------------------------------
  int failures = 0;
  if (!determinism_ok || !chaos_ok) ++failures;
  const bool serial_gate = batch_vs_tuple <= 1.05;
  std::cout << "serial gate:   batch/tuple " << FormatDouble(batch_vs_tuple, 3)
            << " <= 1.05: " << (serial_gate ? "OK" : "FAIL") << "\n";
  if (!serial_gate) ++failures;
  const bool can_gate_parallel = hw >= 4 && args.workers >= 4;
  if (can_gate_parallel) {
    const bool parallel_gate = speedup >= 2.0;
    std::cout << "parallel gate: speedup " << FormatDouble(speedup, 2)
              << " >= 2.0 at " << args.workers
              << " workers: " << (parallel_gate ? "OK" : "FAIL") << "\n";
    if (!parallel_gate) ++failures;
  } else {
    std::cout << "parallel gate: skipped (hw_concurrency=" << hw
              << ", workers=" << args.workers << "; needs both >= 4)\n";
  }

  if (args.json_path.has_value()) {
    std::ostringstream json;
    json << "{\n"
         << "  \"bench\": \"parallel_scan\",\n"
         << "  \"scale\": \"" << args.scale << "\",\n"
         << "  \"pages\": " << pages << ",\n"
         << "  \"workers\": " << args.workers << ",\n"
         << "  \"hardware_concurrency\": " << hw << ",\n"
         << "  \"tuple_ms\": " << FormatDouble(tuple_ms, 3) << ",\n"
         << "  \"batch_serial_ms\": " << FormatDouble(serial_ms, 3) << ",\n"
         << "  \"parallel_ms\": " << FormatDouble(parallel_ms, 3) << ",\n"
         << "  \"batch_vs_tuple\": " << FormatDouble(batch_vs_tuple, 3)
         << ",\n"
         << "  \"speedup_vs_serial\": " << FormatDouble(speedup, 3) << ",\n"
         << "  \"determinism_ok\": " << (determinism_ok ? "true" : "false")
         << ",\n"
         << "  \"chaos_determinism_ok\": " << (chaos_ok ? "true" : "false")
         << "\n}\n";
    std::ofstream out(*args.json_path);
    if (!out.is_open()) {
      std::fprintf(stderr, "cannot open %s\n", args.json_path->c_str());
      return 1;
    }
    out << json.str();
  }

  if (!args.check) return (determinism_ok && chaos_ok) ? 0 : 1;
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace aib

int main(int argc, char** argv) {
  return aib::Run(aib::bench::ParseArgs(argc, argv));
}
