// Outage-sweep gate for fleet fault tolerance (BENCH_shard_chaos.json).
//
// One 4-shard hash fleet per phase, seeded rows, closed-loop single-client
// traffic (deterministic on small CI runners):
//
//   healthy   — point queries on keys owned by the three "survivor"
//               shards: the baseline QPS.
//   crashed   — shard 3 crashed and its breaker driven open; the same
//               survivor-key sequence replayed. Healthy-pruned routing
//               means the outage must not tax these statements:
//               gate qps(crashed) >= 0.8 x qps(healthy).
//   fail-fast — statements routed at the crashed shard after the breaker
//               opened. Fail-fast means no retry ladder and no sleeps:
//               gate p99 <= 20 ms (a refusal is a memory read, not a
//               dispatch).
//   hedged    — fresh fleet with a zero hedge delay: every scatter leg is
//               a hedge candidate, exercising duplicate dispatch end to
//               end. Gate: legs_hedged > 0 and results identical to the
//               unhedged baseline.
//   restart   — RestartShard on the crashed shard, then a probe query set
//               compared against a never-crashed twin fleet: gate
//               bit-identical rid vectors (placement is durable; the
//               Index Buffers re-adapt from cold without changing
//               results).
//   replay    — the same seeded brownout script driven over two fresh
//               fleets: gate equal ShardFaultInjector::TraceHash() (every
//               fault/latency draw is replayable).
//
// --json=PATH emits the numbers and gate verdicts; --check exits nonzero
// when any gate fails.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/csv_writer.h"
#include "common/rng.h"
#include "shard/sharded_database.h"

namespace aib {
namespace {

constexpr size_t kShards = 4;
constexpr size_t kCrashShard = 3;
constexpr Value kDomainLo = 1;
constexpr Value kDomainHi = 5000;
constexpr size_t kOpsPerPhase = 400;
constexpr size_t kFailFastOps = 200;
constexpr size_t kScatterOps = 40;

ShardedDatabaseOptions FleetOptions(const bench::BenchArgs& args) {
  ShardedDatabaseOptions options;
  options.router.num_shards = kShards;
  options.router.policy = ShardingPolicy::kHash;
  options.router.routing_column = 0;
  options.shard.db.max_tuples_per_page = 32;
  options.shard.service.num_workers = 1;
  options.tolerance.seed = args.seed;
  // Keep the breaker open for the whole fail-fast phase: the first probe
  // is not due for 10s, far beyond the measured window.
  options.tolerance.breaker.probe_backoff.base =
      std::chrono::microseconds{10000000};
  return options;
}

std::unique_ptr<ShardedDatabase> MakeFleet(const bench::BenchArgs& args,
                                           ShardedDatabaseOptions options) {
  auto fleet = std::make_unique<ShardedDatabase>(Schema::PaperSchema(2, 16),
                                                 std::move(options));
  const size_t rows = std::max<size_t>(args.num_tuples / 5, 1000);
  Rng load_rng(args.seed);
  for (size_t i = 0; i < rows; ++i) {
    const Value a =
        static_cast<Value>(load_rng.UniformInt(kDomainLo, kDomainHi));
    const Value b =
        static_cast<Value>(load_rng.UniformInt(kDomainLo, kDomainHi));
    Result<GlobalRid> rid = fleet->LoadTuple(Tuple({a, b}, {"row"}));
    if (!rid.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   rid.status().ToString().c_str());
      std::exit(2);
    }
  }
  return fleet;
}

/// The replayed survivor-key sequence: seeded keys owned by any shard but
/// the crash target, identical across phases.
std::vector<Value> SurvivorKeys(const ShardedDatabase& fleet, uint64_t seed) {
  std::vector<Value> keys;
  keys.reserve(kOpsPerPhase);
  Rng rng(seed * 77 + 5);
  while (keys.size() < kOpsPerPhase) {
    const Value v = static_cast<Value>(rng.UniformInt(kDomainLo, kDomainHi));
    if (fleet.router().ShardForValue(v) != kCrashShard) keys.push_back(v);
  }
  return keys;
}

Value VictimKey(const ShardedDatabase& fleet) {
  for (Value v = kDomainLo; v <= kDomainHi; ++v) {
    if (fleet.router().ShardForValue(v) == kCrashShard) return v;
  }
  std::fprintf(stderr, "no key routes to shard %zu\n", kCrashShard);
  std::exit(2);
}

struct PhaseStats {
  double qps = 0;
  double p99_ms = 0;
  size_t failures = 0;
};

/// Closed-loop replay of one point query per key; failures counted, not
/// fatal (the fail-fast phase *expects* them).
PhaseStats ReplayPoints(ShardedDatabase* fleet, const std::vector<Value>& keys) {
  PhaseStats stats;
  std::vector<double> latencies;
  latencies.reserve(keys.size());
  const auto wall_start = std::chrono::steady_clock::now();
  for (const Value key : keys) {
    const auto start = std::chrono::steady_clock::now();
    Result<ShardResult> result = fleet->ExecuteQuery(Query::Point(0, key));
    const auto end = std::chrono::steady_clock::now();
    if (!result.ok()) ++stats.failures;
    latencies.push_back(
        std::chrono::duration<double, std::milli>(end - start).count());
  }
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
  stats.qps = static_cast<double>(keys.size()) / std::max(wall_s, 1e-9);
  std::sort(latencies.begin(), latencies.end());
  stats.p99_ms = latencies.empty()
                     ? 0
                     : latencies[std::min(latencies.size() - 1,
                                          (latencies.size() * 99) / 100)];
  return stats;
}

/// Opens the crash shard's breaker: crash it, then feed routed failures
/// until the trip.
void CrashAndOpenBreaker(ShardedDatabase* fleet) {
  fleet->fault_injector().Crash(kCrashShard);
  const Value victim = VictimKey(*fleet);
  for (int i = 0;
       i < 8 && fleet->health().state(kCrashShard) != BreakerState::kOpen;
       ++i) {
    (void)fleet->ExecuteQuery(Query::Point(0, victim));
  }
  if (fleet->health().state(kCrashShard) != BreakerState::kOpen) {
    std::fprintf(stderr, "breaker failed to open\n");
    std::exit(2);
  }
}

uint64_t BrownoutScriptHash(const bench::BenchArgs& args) {
  // A breaker that never trips, so every scripted statement reaches the
  // injector and extends the decision trace.
  ShardedDatabaseOptions options = FleetOptions(args);
  options.tolerance.breaker.consecutive_failures = 1000000;
  options.tolerance.breaker.error_threshold = 1.1;
  auto fleet = MakeFleet(args, options);
  BrownoutOptions brownout;
  brownout.error_rate = 0.3;
  brownout.latency_rate = 0.1;
  brownout.latency = std::chrono::microseconds{200};
  fleet->fault_injector().Brownout(1, brownout);
  for (size_t i = 0; i < kScatterOps; ++i) {
    (void)fleet->ExecuteQuery(Query::Range(1, kDomainLo, kDomainHi));
  }
  return fleet->fault_injector().TraceHash();
}

int Run(const bench::BenchArgs& args) {
  const size_t rows = std::max<size_t>(args.num_tuples / 5, 1000);
  std::cout << "Shard-chaos bench — " << rows << " rows, " << kShards
            << " hash shards, " << kOpsPerPhase
            << " survivor ops/phase, seed=" << args.seed << "\n\n";

  // --- healthy vs crashed QPS on survivor keys ------------------------------
  auto fleet = MakeFleet(args, FleetOptions(args));
  const std::vector<Value> keys = SurvivorKeys(*fleet, args.seed);
  // Warmup pass so both measured phases run against adapted buffers.
  (void)ReplayPoints(fleet.get(), keys);
  const PhaseStats healthy = ReplayPoints(fleet.get(), keys);
  CrashAndOpenBreaker(fleet.get());
  const PhaseStats crashed = ReplayPoints(fleet.get(), keys);
  std::printf("healthy   qps %8.0f  p99 %7.3f ms  failures %zu\n", healthy.qps,
              healthy.p99_ms, healthy.failures);
  std::printf("crashed   qps %8.0f  p99 %7.3f ms  failures %zu  (1/%zu shards down)\n",
              crashed.qps, crashed.p99_ms, crashed.failures, kShards);

  // --- fail-fast p99 on the dead shard --------------------------------------
  const std::vector<Value> doomed(kFailFastOps, VictimKey(*fleet));
  const PhaseStats fail_fast = ReplayPoints(fleet.get(), doomed);
  std::printf("fail-fast qps %8.0f  p99 %7.3f ms  failures %zu/%zu\n",
              fail_fast.qps, fail_fast.p99_ms, fail_fast.failures,
              kFailFastOps);

  // --- restart equivalence vs a never-crashed twin --------------------------
  Status restart = fleet->RestartShard(kCrashShard);
  if (!restart.ok()) {
    std::fprintf(stderr, "restart failed: %s\n", restart.ToString().c_str());
    return 1;
  }
  auto twin = MakeFleet(args, FleetOptions(args));
  bool restart_identical = true;
  const Query probes[] = {Query::Range(1, kDomainLo, kDomainHi),
                          Query::Point(0, VictimKey(*fleet)),
                          Query::Range(0, kDomainLo, kDomainLo + 500)};
  for (const Query& probe : probes) {
    Result<ShardResult> mine = fleet->ExecuteQuery(probe);
    Result<ShardResult> theirs = twin->ExecuteQuery(probe);
    if (!mine.ok() || !theirs.ok() || mine->rids != theirs->rids) {
      restart_identical = false;
    }
  }
  std::printf("restart   equivalence vs never-crashed twin: %s\n",
              restart_identical ? "bit-identical" : "MISMATCH");

  // --- hedged scatter phase -------------------------------------------------
  ShardedDatabaseOptions hedge_options = FleetOptions(args);
  hedge_options.tolerance.breaker.hedge_default = std::chrono::microseconds{0};
  hedge_options.tolerance.breaker.hedge_floor = std::chrono::microseconds{0};
  auto hedge_fleet = MakeFleet(args, hedge_options);
  Result<ShardResult> unhedged_baseline =
      twin->ExecuteQuery(Query::Range(1, kDomainLo, kDomainHi));
  size_t hedges = 0;
  size_t hedge_wins = 0;
  bool hedged_results_ok = true;
  for (size_t i = 0; i < kScatterOps; ++i) {
    Result<ShardResult> result =
        hedge_fleet->ExecuteQuery(Query::Range(1, kDomainLo, kDomainHi));
    if (!result.ok()) {
      hedged_results_ok = false;
      continue;
    }
    hedges += result->legs_hedged;
    hedge_wins += result->hedge_wins;
    if (unhedged_baseline.ok() &&
        result->rids != unhedged_baseline->rids) {
      hedged_results_ok = false;
    }
  }
  std::printf("hedged    %zu duplicate legs over %zu scatters (%zu wins), "
              "results %s\n",
              hedges, kScatterOps, hedge_wins,
              hedged_results_ok ? "identical" : "MISMATCH");

  // --- deterministic replay gate --------------------------------------------
  const uint64_t trace_a = BrownoutScriptHash(args);
  const uint64_t trace_b = BrownoutScriptHash(args);
  std::printf("replay    trace hash %016llx %s %016llx\n",
              static_cast<unsigned long long>(trace_a),
              trace_a == trace_b ? "==" : "!=",
              static_cast<unsigned long long>(trace_b));

  const std::map<std::string, int64_t> counters = fleet->FleetCounters();
  auto counter = [&](const char* name) {
    auto it = counters.find(name);
    return it == counters.end() ? int64_t{0} : it->second;
  };

  // --- gates ----------------------------------------------------------------
  const bool degrade_ok = crashed.qps >= 0.8 * healthy.qps;
  const bool survivors_clean =
      healthy.failures == 0 && crashed.failures == 0;
  const bool fail_fast_ok =
      fail_fast.p99_ms <= 20.0 && fail_fast.failures == kFailFastOps;
  const bool hedge_ok = hedges > 0 && hedged_results_ok;
  const bool replay_ok = trace_a == trace_b;
  std::cout << "\ngate: qps(crashed)/qps(healthy) "
            << FormatDouble(crashed.qps / std::max(healthy.qps, 1e-9), 2)
            << " >= 0.80: " << (degrade_ok ? "OK" : "FAIL") << "\n"
            << "gate: survivor phases clean: "
            << (survivors_clean ? "OK" : "FAIL") << "\n"
            << "gate: fail-fast p99 " << FormatDouble(fail_fast.p99_ms, 3)
            << " ms <= 20: " << (fail_fast_ok ? "OK" : "FAIL") << "\n"
            << "gate: restart bit-identical: "
            << (restart_identical ? "OK" : "FAIL") << "\n"
            << "gate: hedges dispatched: " << (hedge_ok ? "OK" : "FAIL")
            << "\n"
            << "gate: trace replay: " << (replay_ok ? "OK" : "FAIL") << "\n";

  if (args.json_path.has_value()) {
    std::ostringstream json;
    json << "{\n"
         << "  \"bench\": \"shard_chaos\",\n"
         << "  \"scale\": \"" << args.scale << "\",\n"
         << "  \"rows\": " << rows << ",\n"
         << "  \"shards\": " << kShards << ",\n"
         << "  \"healthy_qps\": " << FormatDouble(healthy.qps, 1) << ",\n"
         << "  \"crashed_qps\": " << FormatDouble(crashed.qps, 1) << ",\n"
         << "  \"crashed_over_healthy\": "
         << FormatDouble(crashed.qps / std::max(healthy.qps, 1e-9), 3)
         << ",\n"
         << "  \"fail_fast_p99_ms\": " << FormatDouble(fail_fast.p99_ms, 3)
         << ",\n"
         << "  \"crash_rejects\": " << counter(kMetricShardCrashRejects)
         << ",\n"
         << "  \"breaker_fast_fails\": "
         << counter(kMetricShardBreakerFastFails) << ",\n"
         << "  \"breaker_opened\": " << counter(kMetricShardBreakerOpened)
         << ",\n"
         << "  \"restarts\": " << counter(kMetricShardRestarts) << ",\n"
         << "  \"hedged_legs\": " << hedges << ",\n"
         << "  \"hedge_wins\": " << hedge_wins << ",\n"
         << "  \"trace_hash\": \"" << std::hex << trace_a << std::dec
         << "\",\n"
         << "  \"degrade_ok\": " << (degrade_ok ? "true" : "false") << ",\n"
         << "  \"survivors_clean\": " << (survivors_clean ? "true" : "false")
         << ",\n"
         << "  \"fail_fast_ok\": " << (fail_fast_ok ? "true" : "false")
         << ",\n"
         << "  \"restart_identical\": "
         << (restart_identical ? "true" : "false") << ",\n"
         << "  \"hedge_ok\": " << (hedge_ok ? "true" : "false") << ",\n"
         << "  \"replay_ok\": " << (replay_ok ? "true" : "false") << "\n}\n";
    std::ofstream out(*args.json_path);
    if (!out.is_open()) {
      std::fprintf(stderr, "cannot open %s\n", args.json_path->c_str());
      return 1;
    }
    out << json.str();
  }

  if (!args.check) return 0;
  return (degrade_ok && survivors_clean && fail_fast_ok && restart_identical &&
          hedge_ok && replay_ok)
             ? 0
             : 1;
}

}  // namespace
}  // namespace aib

int main(int argc, char** argv) {
  return aib::Run(aib::bench::ParseArgs(argc, argv));
}
