// Ablation A: the Index Buffer's internal structure — B+-tree vs hash
// table vs CSB+-tree.
//
// The paper claims the concrete structure "is not essential for the
// general idea" (§III). This bench replays Experiment 1 with both
// structures and compares the per-query cost series and total wall time:
// the *shape* (convergence to index-scan level) must be identical; only
// constant factors may differ (point probes favor the hash table, ordered
// range scans favor the B+-tree).

#include <iostream>

#include "bench_util.h"
#include "common/csv_writer.h"

namespace aib {
namespace {

struct AblationResult {
  std::vector<double> costs;
  int64_t total_wall_ns = 0;
  size_t final_entries = 0;
};

Result<AblationResult> RunOne(const bench::BenchArgs& args,
                              IndexStructureKind kind, bool range_queries) {
  PaperSetupOptions setup = bench::PaperSetup(args);
  setup.db.buffer.structure = kind;
  setup.db.buffer.partition_pages = 10000;
  AIB_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                       BuildPaperDatabase(setup));

  AblationResult result;
  Rng rng(args.seed);
  for (int q = 0; q < 60; ++q) {
    const Value lo = static_cast<Value>(rng.UniformInt(5001, 49900));
    const Query query = range_queries ? Query::Range(0, lo, lo + 99)
                                      : Query::Point(0, lo);
    AIB_ASSIGN_OR_RETURN(QueryResult r, db->Execute(query));
    result.costs.push_back(r.stats.cost);
    result.total_wall_ns += r.stats.wall_ns;
  }
  result.final_entries = db->GetBuffer(0)->TotalEntries();
  return result;
}

int Run(const bench::BenchArgs& args) {
  struct Row {
    std::string label;
    IndexStructureKind kind;
    bool ranges;
  };
  const std::vector<Row> rows = {
      {"btree/point", IndexStructureKind::kBTree, false},
      {"hash/point", IndexStructureKind::kHash, false},
      {"csb/point", IndexStructureKind::kCsbTree, false},
      {"btree/range100", IndexStructureKind::kBTree, true},
      {"hash/range100", IndexStructureKind::kHash, true},
      {"csb/range100", IndexStructureKind::kCsbTree, true},
  };

  ConsoleTable table({"series", "q0 cost", "q10 cost", "q59 cost",
                      "total wall ms", "entries"});
  auto csv = bench::OpenCsv(args);
  CsvWriter csv_writer(csv != nullptr ? *csv : std::cout);
  if (csv != nullptr) {
    csv_writer.WriteHeader({"series", "query", "cost_units"});
  }

  for (const Row& row : rows) {
    Result<AblationResult> r = RunOne(args, row.kind, row.ranges);
    if (!r.ok()) {
      std::cerr << r.status().ToString() << "\n";
      return 1;
    }
    if (csv != nullptr) {
      for (size_t q = 0; q < r->costs.size(); ++q) {
        csv_writer.Row(row.label, q, FormatDouble(r->costs[q], 3));
      }
    }
    table.AddRow({row.label, FormatDouble(r->costs[0], 0),
                  FormatDouble(r->costs[10], 1),
                  FormatDouble(r->costs[59], 1),
                  std::to_string(r->total_wall_ns / 1000000),
                  std::to_string(r->final_entries)});
  }

  std::cout << "Ablation A — Index Buffer structure: B+-tree vs hash table vs "
               "CSB+-tree (Experiment 1 replay)\n\n";
  table.Print(std::cout);
  std::cout << "\nShape check: both structures converge to the same cost "
               "floor with the same entry count — the mechanism is "
               "structure-agnostic, as §III claims.\n";
  return 0;
}

}  // namespace
}  // namespace aib

int main(int argc, char** argv) {
  return aib::Run(aib::bench::ParseArgs(argc, argv));
}
