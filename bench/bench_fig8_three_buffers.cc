// Figure 8 (Experiment 3): three Index Buffers competing for a bounded
// Index Buffer Space.
//
// The paper's setting: 200 queries across columns A, B, C; the first 100
// with mix 1/2 : 1/3 : 1/6, the second 100 with mix 1/6 : 1/3 : 1/2;
// L = 800,000 entries, I_MAX = 5,000, P = 10,000. Plotted: entries per
// Index Buffer over time.
//
// Expected shape: in the first period A's buffer occupies more than half
// of the space, B most of the rest, C only sporadic entries. After the
// switch the allocation flips: C grows to roughly half the space and A
// shrinks towards zero.

#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "common/ascii_chart.h"
#include "common/csv_writer.h"

namespace aib {
namespace {

int Run(const bench::BenchArgs& args) {
  PaperSetupOptions setup = bench::PaperSetup(args);
  // Paper ratios, scaled with the table: one column has ~0.9*N uncovered
  // tuples; L = 800,000 is ~1.8x that at N = 500,000 (room for almost two
  // of the three buffers). I_MAX = 5,000 pages is ~18% of the paper's
  // ~27,500-page table, P = 10,000 pages ~36%.
  const size_t space_bound = args.num_tuples * 8 / 5;
  setup.db.space.max_entries = space_bound;
  setup.db.space.max_pages_per_scan =
      std::max<size_t>(1, args.num_tuples / 155);
  setup.db.space.seed = args.seed;
  setup.db.buffer.partition_pages =
      std::max<size_t>(1, args.num_tuples / 77);
  setup.db.buffer.initial_interval = 20.0;
  Result<std::unique_ptr<Database>> db_or = BuildPaperDatabase(setup);
  if (!db_or.ok()) {
    std::cerr << "setup failed: " << db_or.status().ToString() << "\n";
    return 1;
  }
  std::unique_ptr<Database> db = std::move(db_or).value();

  PhaseSpec first;
  first.num_queries = 100;
  first.mix = {bench::PaperMix(0, 3.0), bench::PaperMix(1, 2.0),
               bench::PaperMix(2, 1.0)};
  PhaseSpec second;
  second.num_queries = 100;
  second.mix = {bench::PaperMix(0, 1.0), bench::PaperMix(1, 2.0),
                bench::PaperMix(2, 3.0)};
  WorkloadGenerator gen({first, second}, args.seed);
  Result<std::vector<SeriesPoint>> series_or = RunWorkload(db.get(), &gen);
  if (!series_or.ok()) {
    std::cerr << "workload failed: " << series_or.status().ToString() << "\n";
    return 1;
  }
  const std::vector<SeriesPoint>& series = series_or.value();

  auto csv = bench::OpenCsv(args);
  CsvWriter csv_writer(csv != nullptr ? *csv : std::cout);
  if (csv != nullptr) {
    csv_writer.WriteHeader(
        {"query", "entries_a", "entries_b", "entries_c"});
    for (const SeriesPoint& point : series) {
      csv_writer.Row(point.query_index, point.buffer_entries[0],
                     point.buffer_entries[1], point.buffer_entries[2]);
    }
  }

  ConsoleTable table({"query", "A entries", "B entries", "C entries",
                      "A share", "C share"});
  for (const SeriesPoint& point : series) {
    const size_t q = point.query_index;
    if (q % 20 == 19 || q == 0) {
      const double total = static_cast<double>(std::max<size_t>(
          1, point.buffer_entries[0] + point.buffer_entries[1] +
                 point.buffer_entries[2]));
      table.AddRow(
          {std::to_string(q), std::to_string(point.buffer_entries[0]),
           std::to_string(point.buffer_entries[1]),
           std::to_string(point.buffer_entries[2]),
           FormatDouble(point.buffer_entries[0] / total * 100, 0) + "%",
           FormatDouble(point.buffer_entries[2] / total * 100, 0) + "%"});
    }
  }

  std::cout << "Figure 8 — Three Index Buffers with limited space (L="
            << space_bound << " entries)\n"
            << "(mix 1/2 A : 1/3 B : 1/6 C switches to 1/6 A : 1/3 B : "
               "1/2 C at query 100)\n\n";
  table.Print(std::cout);

  std::vector<std::vector<double>> entries_series(3);
  for (const SeriesPoint& point : series) {
    for (size_t c = 0; c < 3; ++c) {
      entries_series[c].push_back(
          static_cast<double>(point.buffer_entries[c]));
    }
  }
  std::cout << "\nbuffer entries over time (A='A', B='B', C='C'; x = query "
               "0..199; mix switch at 100):\n"
            << AsciiChart::RenderMulti(entries_series, "ABC");

  // Phase-average summary (the figure's headline observation).
  auto mean_share = [&](ColumnId column, size_t from, size_t to) {
    double sum = 0;
    for (size_t i = from; i < to; ++i) {
      const auto& e = series[i].buffer_entries;
      const double total =
          static_cast<double>(std::max<size_t>(1, e[0] + e[1] + e[2]));
      sum += e[column] / total;
    }
    return sum / static_cast<double>(to - from);
  };
  std::cout << "\nphase averages (second half of each phase):\n"
            << "  period 1: A=" << FormatDouble(mean_share(0, 50, 100) * 100, 0)
            << "% C=" << FormatDouble(mean_share(2, 50, 100) * 100, 0)
            << "%\n"
            << "  period 2: A=" << FormatDouble(mean_share(0, 150, 200) * 100, 0)
            << "% C=" << FormatDouble(mean_share(2, 150, 200) * 100, 0)
            << "%\n"
            << "Shape check: A dominates period 1; after the switch C "
               "grows to roughly half the space and A shrinks towards "
               "zero.\n";
  return 0;
}

}  // namespace
}  // namespace aib

int main(int argc, char** argv) {
  return aib::Run(aib::bench::ParseArgs(argc, argv));
}
