// Ablation C: the partition size P of the Index Buffer.
//
// Partitions are the paper's unit of eviction (§IV): dropping whole
// partitions avoids the double-negative effect of removing single entries,
// but the granularity is a trade-off the paper fixes at P = 10,000 pages
// without exploring it. Small P = fine-grained eviction (buffers shed
// exactly as much as needed, at more bookkeeping and more per-query
// partition probes); large P = coarse eviction (a single displacement can
// wipe a large fraction of a competitor's buffer).
//
// This bench replays the Experiment-3 competition under a tight budget for
// several P values and reports allocation responsiveness (how fast the
// post-switch winner acquires space) and probe overhead.

#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "common/csv_writer.h"

namespace aib {
namespace {

struct PartitionResult {
  double switch_lag_queries = 0;  // queries until C holds > 40% of space
  double mean_c_share_tail = 0;   // C's share over the last 50 queries
  size_t partitions_end = 0;      // total partitions at the end
};

Result<PartitionResult> RunOne(const bench::BenchArgs& args,
                               size_t partition_pages) {
  PaperSetupOptions setup = bench::PaperSetup(args);
  setup.db.space.max_entries = args.num_tuples * 8 / 5;
  setup.db.space.max_pages_per_scan =
      std::max<size_t>(1, args.num_tuples / 155);
  setup.db.space.seed = args.seed;
  setup.db.buffer.partition_pages = partition_pages;
  setup.db.buffer.initial_interval = 20.0;
  AIB_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                       BuildPaperDatabase(setup));

  PhaseSpec first;
  first.num_queries = 100;
  first.mix = {bench::PaperMix(0, 3.0), bench::PaperMix(1, 2.0),
               bench::PaperMix(2, 1.0)};
  PhaseSpec second;
  second.num_queries = 100;
  second.mix = {bench::PaperMix(0, 1.0), bench::PaperMix(1, 2.0),
                bench::PaperMix(2, 3.0)};
  WorkloadGenerator gen({first, second}, args.seed);
  AIB_ASSIGN_OR_RETURN(std::vector<SeriesPoint> series,
                       RunWorkload(db.get(), &gen));

  PartitionResult result;
  result.switch_lag_queries = 100;  // worst case: never
  double share_sum = 0;
  for (size_t q = 100; q < 200; ++q) {
    const auto& e = series[q].buffer_entries;
    const double total =
        static_cast<double>(std::max<size_t>(1, e[0] + e[1] + e[2]));
    const double c_share = e[2] / total;
    if (c_share > 0.4 && result.switch_lag_queries == 100) {
      result.switch_lag_queries = static_cast<double>(q - 100);
    }
    if (q >= 150) share_sum += c_share;
  }
  result.mean_c_share_tail = share_sum / 50.0;
  for (ColumnId c = 0; c < 3; ++c) {
    result.partitions_end += db->GetBuffer(c)->PartitionCount();
  }
  return result;
}

int Run(const bench::BenchArgs& args) {
  const size_t pages_estimate = std::max<size_t>(1, args.num_tuples / 28);
  const std::vector<std::pair<std::string, size_t>> configs = {
      {"P = 2% of pages", std::max<size_t>(1, pages_estimate / 50)},
      {"P = 9% of pages", std::max<size_t>(1, pages_estimate / 11)},
      {"P = 36% of pages (paper)", std::max<size_t>(1, pages_estimate * 36 / 100)},
      {"P = 100% of pages", pages_estimate},
  };

  ConsoleTable table({"partition size", "switch lag (queries)",
                      "C share (tail)", "partitions at end"});
  for (const auto& [label, pages] : configs) {
    Result<PartitionResult> r = RunOne(args, pages);
    if (!r.ok()) {
      std::cerr << r.status().ToString() << "\n";
      return 1;
    }
    table.AddRow({label, FormatDouble(r->switch_lag_queries, 0),
                  FormatDouble(r->mean_c_share_tail * 100, 0) + "%",
                  std::to_string(r->partitions_end)});
  }

  std::cout << "Ablation C — Index Buffer partition size P "
               "(Experiment-3 competition replay)\n\n";
  table.Print(std::cout);
  std::cout << "\nShape check: the post-switch winner (C) should reach a "
               "high share under every P; very large P makes reallocation "
               "coarse (all-or-nothing swings), very small P multiplies "
               "partitions (probe and bookkeeping overhead) without "
               "changing the steady state much.\n";
  return 0;
}

}  // namespace
}  // namespace aib

int main(int argc, char** argv) {
  return aib::Run(aib::bench::ParseArgs(argc, argv));
}
