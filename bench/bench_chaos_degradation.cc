// Chaos degradation bench: query-cost overhead as the injected fault rate
// grows. Each rate gets a fresh database and the same seeded paper mix of
// point queries; the FaultInjector is armed with the rate split between
// transient and corruption faults plus a slow-page latency stream.
//
// What to look for: at rate 0 the mean cost is the adaptive baseline; as
// the rate climbs, corruption strikes inside indexing scans quarantine
// partitions and force plain-scan fallbacks, so mean cost rises through
// degraded full passes — while every query keeps returning the exact
// result. latency_cost prices the faults.latency_ticks metric through
// CostModel::LatencyCost.
//
// Columns: fault_rate, queries, failed, mean_cost, degraded, quarantined,
// transient_retries, faults, latency_cost.

#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/csv_writer.h"
#include "common/rng.h"
#include "storage/fault_injector.h"
#include "workload/database.h"
#include "workload/experiment.h"

namespace aib {
namespace {

struct RateResult {
  double fault_rate = 0;
  size_t queries = 0;
  size_t failed = 0;
  double mean_cost = 0;
  int64_t degraded = 0;
  int64_t quarantined = 0;
  int64_t transient_retries = 0;
  int64_t faults = 0;
  double latency_cost = 0;
};

RateResult RunRate(const PaperSetupOptions& setup, double rate,
                   size_t num_queries, uint64_t seed) {
  RateResult out;
  out.fault_rate = rate;

  Result<std::unique_ptr<Database>> db_or = BuildPaperDatabase(setup);
  if (!db_or.ok()) {
    std::cerr << "setup failed: " << db_or.status().ToString() << "\n";
    std::exit(1);
  }
  std::unique_ptr<Database> db = std::move(db_or).value();

  if (rate > 0) {
    FaultInjectorOptions fault_options;
    fault_options.seed = seed;
    fault_options.read_fault_rate = rate;
    fault_options.write_fault_rate = rate;
    fault_options.corruption_fraction = 0.5;
    fault_options.latency_rate = rate;
    db->catalog().disk().fault_injector().Arm(fault_options);
  }

  // Paper mix: 30% covered points, 70% uncovered (indexing scans) — the
  // uncovered side is where degradation machinery engages.
  Rng rng(seed);
  double total_cost = 0;
  for (size_t i = 0; i < num_queries; ++i) {
    const bool covered = rng.UniformInt(0, 9) < 3;
    const Value value =
        covered ? static_cast<Value>(
                      rng.UniformInt(setup.covered_lo, setup.covered_hi))
                : static_cast<Value>(
                      rng.UniformInt(setup.covered_hi + 1, setup.value_max));
    Result<QueryResult> result =
        db->Execute(Query::Point(0, value));
    // Whole-query retry on transient/corruption, same policy as the query
    // service; a query that still fails after that counts as failed.
    for (int attempt = 0;
         !result.ok() &&
         (result.status().IsTransient() || result.status().IsCorruption()) &&
         attempt < 5;
         ++attempt) {
      result = db->Execute(Query::Point(0, value));
    }
    if (!result.ok()) {
      ++out.failed;
      continue;
    }
    total_cost += result->stats.cost;
    ++out.queries;
  }
  if (out.queries > 0) {
    out.mean_cost = total_cost / static_cast<double>(out.queries);
  }
  out.degraded = db->metrics().Get(kMetricDegradedQueries);
  out.quarantined = db->metrics().Get(kMetricPartitionsQuarantined);
  out.transient_retries = db->metrics().Get(kMetricTransientRetries);
  out.faults = db->metrics().Get(kMetricFaultsInjected);
  const CostModel cost_model(setup.db.cost);
  out.latency_cost = cost_model.LatencyCost(
      static_cast<uint64_t>(db->metrics().Get(kMetricFaultLatencyTicks)));
  return out;
}

int Run(const bench::BenchArgs& args) {
  PaperSetupOptions setup = bench::PaperSetup(args);
  // Keep the pool well under the table size so fetches reach the
  // DiskManager (and thus the injector) instead of the page cache.
  setup.db.buffer_pool_pages = 256;
  const size_t num_queries = args.scale == "small" ? 1500u : 4000u;

  std::vector<RateResult> results;
  // The top rate sits past the degradation cliff on purpose: with ~0.01
  // corruption per page read, a full-table fallback pass over ~1000 pages
  // almost never completes, so `failed` jumps from ~0 to the bulk of the
  // uncovered queries.
  for (const double rate : {0.0, 0.001, 0.005, 0.02}) {
    results.push_back(RunRate(setup, rate, num_queries, args.seed));
  }

  auto csv = bench::OpenCsv(args);
  if (csv != nullptr) {
    CsvWriter csv_writer(*csv);
    csv_writer.WriteHeader({"fault_rate", "queries", "failed", "mean_cost",
                            "degraded", "quarantined", "transient_retries",
                            "faults", "latency_cost"});
    for (const RateResult& r : results) {
      csv_writer.Row(FormatDouble(r.fault_rate, 3), r.queries, r.failed,
                     FormatDouble(r.mean_cost, 3), r.degraded, r.quarantined,
                     r.transient_retries, r.faults,
                     FormatDouble(r.latency_cost, 2));
    }
  }

  std::cout << "Chaos degradation — mean query cost vs injected fault rate ("
            << num_queries << " point queries per rate, fresh DB each)\n\n";
  ConsoleTable table({"fault_rate", "failed", "mean_cost", "degraded",
                      "quarantined", "retries", "faults", "latency_cost"});
  for (const RateResult& r : results) {
    table.AddRow({FormatDouble(r.fault_rate, 3), std::to_string(r.failed),
                  FormatDouble(r.mean_cost, 3), std::to_string(r.degraded),
                  std::to_string(r.quarantined),
                  std::to_string(r.transient_retries),
                  std::to_string(r.faults),
                  FormatDouble(r.latency_cost, 2)});
  }
  table.Print(std::cout);
  std::cout << "\nCosts stay near baseline at low rates (retries absorb the "
               "transients); degraded full passes raise the mean until, past "
               "the cliff, whole queries start failing outright.\n";
  return 0;
}

}  // namespace
}  // namespace aib

int main(int argc, char** argv) {
  return aib::Run(aib::bench::ParseArgs(argc, argv));
}
