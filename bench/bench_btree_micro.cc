// Substrate micro-benchmarks: B+-tree vs hash index operation throughput.
//
// The paper's Index Buffer is structure-agnostic (§III); this bench
// quantifies the raw point/range operation costs of the two structures the
// library ships (kind 0 = B+-tree, 1 = hash, 2 = CSB+-tree), informing
// the structure ablation (bench_ablation_structure).

#include <benchmark/benchmark.h>

#include "btree/btree.h"
#include "btree/hash_index.h"
#include "common/rng.h"

namespace aib {
namespace {

std::unique_ptr<IndexStructure> Make(int kind) {
  switch (kind) {
    case 0:
      return CreateIndexStructure(IndexStructureKind::kBTree);
    case 1:
      return CreateIndexStructure(IndexStructureKind::kHash);
    default:
      return CreateIndexStructure(IndexStructureKind::kCsbTree);
  }
}

void FillRandom(IndexStructure* index, size_t n, uint64_t seed) {
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    index->Insert(static_cast<Value>(rng.UniformInt(1, 50000)),
                  Rid{static_cast<PageId>(i / 64),
                      static_cast<SlotId>(i % 64)});
  }
}

void BM_Insert(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    state.PauseTiming();
    auto index = Make(static_cast<int>(state.range(0)));
    state.ResumeTiming();
    FillRandom(index.get(), n, 7);
    benchmark::DoNotOptimize(index->EntryCount());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Insert)
    ->ArgNames({"kind", "n"})
    ->ArgsProduct({{0, 1, 2}, {10000, 100000}});

void BM_PointLookup(benchmark::State& state) {
  auto index = Make(static_cast<int>(state.range(0)));
  FillRandom(index.get(), 100000, 7);
  Rng rng(13);
  std::vector<Rid> out;
  for (auto _ : state) {
    out.clear();
    index->Lookup(static_cast<Value>(rng.UniformInt(1, 50000)), &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PointLookup)->ArgNames({"kind"})->Arg(0)->Arg(1)->Arg(2);

void BM_RangeScan100(benchmark::State& state) {
  auto index = Make(static_cast<int>(state.range(0)));
  FillRandom(index.get(), 100000, 7);
  Rng rng(17);
  for (auto _ : state) {
    const Value lo = static_cast<Value>(rng.UniformInt(1, 49900));
    size_t count = 0;
    index->Scan(lo, lo + 99, [&](Value, const Rid&) { ++count; });
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RangeScan100)->ArgNames({"kind"})->Arg(0)->Arg(1)->Arg(2);

void BM_RemoveInsertChurn(benchmark::State& state) {
  auto index = Make(static_cast<int>(state.range(0)));
  FillRandom(index.get(), 100000, 7);
  Rng rng(23);
  for (auto _ : state) {
    const Value v = static_cast<Value>(rng.UniformInt(1, 50000));
    const Rid rid{999999, 1};
    index->Insert(v, rid);
    benchmark::DoNotOptimize(index->Remove(v, rid));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RemoveInsertChurn)->ArgNames({"kind"})->Arg(0)->Arg(1)->Arg(2);

void BM_BTreeFanoutSweep(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    BTree tree(fanout);
    state.ResumeTiming();
    FillRandom(&tree, 50000, 7);
    benchmark::DoNotOptimize(tree.EntryCount());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 50000);
}
BENCHMARK(BM_BTreeFanoutSweep)
    ->ArgNames({"fanout"})
    ->Arg(8)
    ->Arg(32)
    ->Arg(64)
    ->Arg(256);

}  // namespace
}  // namespace aib

BENCHMARK_MAIN();
