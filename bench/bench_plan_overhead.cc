// Refactor guard: the physical-plan execution layer must not regress the
// engine measurably. Replays the Figure 6 workload (200 point queries on
// uncovered values of column A, unlimited space) and checks
//
//   1. total simulated cost against the recorded pre-refactor number (the
//      monolithic executor produced 4178.766 cost units at --scale=small
//      --seed=1) — the plan path must stay within +5%;
//   2. wall time of the plan path against an inlined copy of the
//      pre-refactor monolithic executor running the identical workload on
//      an identically-seeded database — median over repetitions, +5%
//      budget.
//
// Exits nonzero on violation, so the guard can run in CI. --csv emits the
// per-repetition timings.

#include <algorithm>
#include <chrono>
#include <iostream>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_set>
#include <vector>

#include "bench_util.h"
#include "common/csv_writer.h"
#include "core/indexing_scan.h"

namespace aib {
namespace {

/// Pre-refactor total simulated cost of this exact workload at
/// --scale=small --seed=1, recorded from the monolithic executor
/// immediately before the plan refactor.
constexpr double kRecordedSmallSeed1Cost = 4178.766;
constexpr double kBudget = 1.05;
constexpr int kRepetitions = 7;

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Inlined copy of the pre-refactor monolithic executor (hit branch +
/// ExecuteMiss), the wall-time reference the plan path races against.
class DirectExecutor {
 public:
  explicit DirectExecutor(Database* db)
      : db_(db),
        table_(&db->table()),
        space_(db->space()),
        cost_model_(db->options().cost),
        buffer_options_(db->options().buffer) {}

  Result<QueryResult> Execute(const Query& query) {
    PartialIndex* index = db_->GetIndex(query.column);
    if (index == nullptr) return Status::Internal("bench expects an index");

    const int64_t start = NowNs();
    const bool hit = index->coverage().CoversRange(query.lo, query.hi);
    if (space_ != nullptr) {
      std::unique_lock<std::shared_mutex> latch(space_->latch());
      space_->OnQuery(index, hit);
    }

    QueryResult result;
    if (hit) {
      result.stats.used_partial_index = true;
      if (query.IsPoint()) {
        index->Lookup(query.lo, &result.rids);
      } else {
        index->Scan(query.lo, query.hi, [&](Value, const Rid& rid) {
          result.rids.push_back(rid);
        });
      }
      ++result.stats.ix_probes;
      AIB_RETURN_IF_ERROR(FetchRids(result.rids, &result.stats));
    } else {
      std::unique_lock<std::shared_mutex> latch(space_->latch());
      IndexBuffer* buffer = space_->GetBuffer(index);
      if (buffer == nullptr) {
        AIB_ASSIGN_OR_RETURN(buffer,
                             space_->CreateBuffer(index, buffer_options_));
      }
      result.stats.used_index_buffer = true;
      result.stats.buffer_probes = buffer->PartitionCount();
      IndexingScanStats scan_stats;
      AIB_RETURN_IF_ERROR(RunIndexingScan(*table_, space_, buffer, query.lo,
                                          query.hi, &result.rids,
                                          &scan_stats));
      result.stats.pages_scanned = scan_stats.pages_scanned;
      result.stats.pages_skipped = scan_stats.pages_skipped;
      result.stats.entries_added = scan_stats.entries_added;
      result.stats.buffer_matches = scan_stats.buffer_matches;
      result.stats.partitions_dropped = scan_stats.partitions_dropped;
      result.stats.entries_dropped = scan_stats.entries_dropped;
      const std::vector<Rid> buffer_rids(
          result.rids.begin(),
          result.rids.begin() +
              static_cast<ptrdiff_t>(scan_stats.buffer_matches));
      AIB_RETURN_IF_ERROR(FetchRids(buffer_rids, &result.stats));
    }
    result.stats.result_count = result.rids.size();
    result.stats.cost = cost_model_.QueryCost(result.stats);
    result.stats.wall_ns = NowNs() - start;
    return result;
  }

 private:
  Status FetchRids(const std::vector<Rid>& rids, QueryStats* stats) const {
    std::unordered_set<PageId> pages;
    for (const Rid& rid : rids) {
      AIB_RETURN_IF_ERROR(table_->Get(rid).status());
      pages.insert(rid.page_id);
    }
    stats->pages_fetched += pages.size();
    return Status::Ok();
  }

  Database* db_;
  const Table* table_;
  IndexBufferSpace* space_;
  CostModel cost_model_;
  IndexBufferOptions buffer_options_;
};

std::unique_ptr<Database> BuildFig6Db(const bench::BenchArgs& args) {
  PaperSetupOptions setup = bench::PaperSetup(args);
  setup.db.space.max_entries = 0;
  setup.db.space.max_pages_per_scan = std::max<size_t>(1, args.num_tuples / 100);
  setup.db.buffer.partition_pages = std::max<size_t>(1, args.num_tuples / 50);
  Result<std::unique_ptr<Database>> db = BuildPaperDatabase(setup);
  return db.ok() ? std::move(db).value() : nullptr;
}

std::vector<Query> Fig6Queries(const bench::BenchArgs& args) {
  PhaseSpec phase;
  phase.num_queries = 200;
  phase.mix = {bench::PaperMix(0)};
  WorkloadGenerator gen({phase}, args.seed);
  std::vector<Query> queries;
  while (std::optional<Query> q = gen.Next()) queries.push_back(*q);
  return queries;
}

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

int Run(const bench::BenchArgs& args) {
  const std::vector<Query> queries = Fig6Queries(args);

  // One repetition = the full 200-query workload on a fresh database.
  // Alternate plan/direct order per repetition so cache warmth cancels.
  std::vector<double> plan_ms, direct_ms, plan_costs;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    for (int side = 0; side < 2; ++side) {
      const bool plan_side = (rep + side) % 2 == 0;
      std::unique_ptr<Database> db = BuildFig6Db(args);
      if (db == nullptr) {
        std::cerr << "setup failed\n";
        return 1;
      }
      DirectExecutor direct(db.get());
      double total_cost = 0;
      const int64_t start = NowNs();
      for (const Query& query : queries) {
        Result<QueryResult> result =
            plan_side ? db->Execute(query) : direct.Execute(query);
        if (!result.ok()) {
          std::cerr << "query failed: " << result.status().ToString() << "\n";
          return 1;
        }
        total_cost += result->stats.cost;
      }
      const double elapsed_ms =
          static_cast<double>(NowNs() - start) / 1e6;
      if (plan_side) {
        plan_ms.push_back(elapsed_ms);
        plan_costs.push_back(total_cost);
      } else {
        direct_ms.push_back(elapsed_ms);
      }
    }
  }

  const double plan_cost = plan_costs.front();
  const double plan_median = Median(plan_ms);
  const double direct_median = Median(direct_ms);
  const double wall_ratio = plan_median / direct_median;

  auto csv = bench::OpenCsv(args);
  if (csv != nullptr) {
    CsvWriter csv_writer(*csv);
    csv_writer.WriteHeader({"rep", "plan_ms", "direct_ms"});
    for (size_t i = 0; i < plan_ms.size(); ++i) {
      csv_writer.Row(i, FormatDouble(plan_ms[i], 3),
                     FormatDouble(direct_ms[i], 3));
    }
  }

  std::cout << "Plan-overhead guard — Fig. 6 workload, " << queries.size()
            << " queries, scale=" << args.scale << ", seed=" << args.seed
            << "\n\n"
            << "simulated cost (plan path):  " << FormatDouble(plan_cost, 3)
            << "\n"
            << "wall median (plan path):     " << FormatDouble(plan_median, 2)
            << " ms\nwall median (direct path):   "
            << FormatDouble(direct_median, 2) << " ms\nwall ratio:          "
            << "        " << FormatDouble(wall_ratio, 3) << "\n\n";

  int failures = 0;
  if (args.scale == "small" && args.seed == 1) {
    const double limit = kRecordedSmallSeed1Cost * kBudget;
    std::cout << "cost check:  " << FormatDouble(plan_cost, 3)
              << " <= " << FormatDouble(limit, 3) << " (recorded "
              << FormatDouble(kRecordedSmallSeed1Cost, 3) << " +5%): ";
    if (plan_cost <= limit) {
      std::cout << "OK\n";
    } else {
      std::cout << "FAIL\n";
      ++failures;
    }
  } else {
    std::cout << "cost check:  skipped (recorded baseline is for "
                 "--scale=small --seed=1)\n";
  }
  std::cout << "wall check:  ratio " << FormatDouble(wall_ratio, 3)
            << " <= " << FormatDouble(kBudget, 2) << ": ";
  if (wall_ratio <= kBudget) {
    std::cout << "OK\n";
  } else {
    std::cout << "FAIL\n";
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace aib

int main(int argc, char** argv) {
  return aib::Run(aib::bench::ParseArgs(argc, argv));
}
