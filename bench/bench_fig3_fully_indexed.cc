// Figure 3: Share of fully indexed pages with partial indexing.
//
// Reproduces the paper's §II simulation: 100,000 tuples, a partial index
// covering a fixed share of the value domain, and a physical order that
// starts perfectly clustered (correlation 1) and is gradually randomized by
// tuple swaps. Six scenarios vary the page size in tuples
// {2, 5, 10, 20, 50, 100}.
//
// Expected shape: at correlation 1 the fully-indexed fraction equals the
// coverage; it collapses rapidly as the correlation drops, the faster the
// more tuples a page holds. For >= 10 tuples/page and correlation <= 0.8,
// fewer than ~5% of pages remain fully indexed — the observation that
// motivates the Index Buffer.

#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/csv_writer.h"
#include "workload/correlation.h"

namespace aib {
namespace {

int Run(const bench::BenchArgs& args) {
  const std::vector<size_t> kTuplesPerPage = {2, 5, 10, 20, 50, 100};
  const std::vector<double> kReportCorrelations = {1.0,  0.95, 0.9, 0.8,
                                                   0.6,  0.4,  0.2, 0.0};

  auto csv = bench::OpenCsv(args);
  CsvWriter csv_writer(csv != nullptr ? *csv : std::cout);
  if (csv != nullptr) {
    csv_writer.WriteHeader(
        {"tuples_per_page", "correlation", "fully_indexed_fraction"});
  }

  std::vector<std::string> header = {"correlation"};
  for (size_t tpp : kTuplesPerPage) {
    header.push_back(std::to_string(tpp) + " t/p");
  }
  ConsoleTable table(header);

  // One sweep per scenario; sample the fraction at the report correlations.
  std::vector<std::vector<double>> sampled(kReportCorrelations.size(),
                                           std::vector<double>());
  for (size_t tpp : kTuplesPerPage) {
    CorrelationSweepOptions options;
    options.num_tuples = 100000;
    options.tuples_per_page = tpp;
    options.coverage_fraction = 0.5;
    options.steps = 400;
    options.swaps_per_step = 1000;
    options.seed = args.seed;
    const std::vector<CorrelationPoint> sweep =
        SimulateCorrelationSweep(options);
    if (csv != nullptr) {
      for (const CorrelationPoint& point : sweep) {
        csv_writer.Row(tpp, FormatDouble(point.correlation, 4),
                       FormatDouble(point.fully_indexed_fraction, 4));
      }
    }
    // The sweep's correlation decreases monotonically (modulo jitter);
    // take the first point at or below each report correlation.
    size_t cursor = 0;
    for (size_t i = 0; i < kReportCorrelations.size(); ++i) {
      while (cursor + 1 < sweep.size() &&
             sweep[cursor].correlation > kReportCorrelations[i]) {
        ++cursor;
      }
      sampled[i].push_back(sweep[cursor].fully_indexed_fraction);
    }
  }

  for (size_t i = 0; i < kReportCorrelations.size(); ++i) {
    std::vector<std::string> row = {FormatDouble(kReportCorrelations[i], 2)};
    for (double fraction : sampled[i]) {
      row.push_back(FormatDouble(fraction * 100, 2) + "%");
    }
    table.AddRow(row);
  }

  std::cout << "Figure 3 — Share of fully indexed pages vs physical/logical "
               "order correlation\n"
            << "(100,000 tuples, partial index covers 50% of the domain; "
               "columns = tuples per page)\n\n";
  table.Print(std::cout);
  std::cout << "\nShape check: 50% everywhere at correlation 1.0; for >= 10 "
               "tuples/page the fraction should fall below ~5% by "
               "correlation 0.8.\n";
  return 0;
}

}  // namespace
}  // namespace aib

int main(int argc, char** argv) {
  return aib::Run(aib::bench::ParseArgs(argc, argv));
}
