// Perf + correctness gate for the mixed read/write statement pipeline.
//
// Three legs over the paper's data setup, each driven through a 1-worker
// QueryService (the deterministic FIFO configuration) by the seeded
// MixedWorkloadGenerator:
//
//   read-only — write_fraction 0.0, the paper's pure point-query mix;
//   mixed-10  — write_fraction 0.1 (inserts/updates/deletes, Zipf victims);
//   mixed-30  — write_fraction 0.3.
//
// Per leg we report the mean read cost (cost-model units, deterministic)
// and mean wall latencies for reads and DML. Gates with --check:
//
//   1. determinism (always): each leg is run twice with the same seed; the
//      full trace (statement kinds, result rids, scan counters, costs) and
//      the final adaptive state (buffer entries, partitions, page counters)
//      must hash bit-identically. A write path that leaks nondeterminism
//      into the adaptive trajectory fails here.
//   2. no-regression: mean read cost under 10% writes must stay within a
//      generous 3x of the read-only mean — DML invalidates buffered pages,
//      so reads pay some re-indexing, but the maintenance path must keep
//      the buffer useful rather than thrashing it.
//
// --json=PATH emits the numbers for CI artifacts (BENCH_mixed_workload.json).
//
// --contention switches to the latch-contention sweep of the
// partition-granular concurrency refactor: 4 reader threads drive covered
// point probes while 0/1/4/8 writer threads run DML in value bands that
// are either disjoint per writer or fully overlapping. Writers stay
// strictly above covered_hi, so every probe's result set is invariant and
// checked exactly (a correctness failure is always fatal). Reported per
// cell: read QPS, writer throughput, and the latch-contention counters
// (waits, optimistic retries/fallbacks). With --check, one lenient
// wall-clock gate: read QPS under 4 disjoint-band writers must hold at
// least 25% of the writer-free baseline — the claim the refactor makes is
// precisely that disjoint-partition writers do not serialize readers.
// --json=PATH emits BENCH_latch_contention.json in this mode.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/csv_writer.h"
#include "core/buffer_space.h"
#include "core/index_buffer.h"
#include "service/query_service.h"
#include "workload/database.h"
#include "workload/experiment.h"
#include "workload/workload_gen.h"

namespace aib {
namespace {

constexpr size_t kStatements = 1000;

/// FNV-1a fold of the per-statement trace and the final adaptive state.
struct TraceHash {
  uint64_t state = 1469598103934665603ull;
  void Mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      state ^= (v >> (i * 8)) & 0xff;
      state *= 1099511628211ull;
    }
  }
};

struct LegResult {
  double mean_read_cost = 0;
  double mean_read_ms = 0;
  double mean_dml_ms = 0;
  size_t reads = 0;
  size_t dml = 0;
  int64_t dml_executed = 0;
  uint64_t trace_hash = 0;
};

LegResult RunLeg(const bench::BenchArgs& args, double write_fraction) {
  PaperSetupOptions setup = bench::PaperSetup(args);
  auto db = BuildPaperDatabase(setup);
  if (!db.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 db.status().ToString().c_str());
    std::exit(2);
  }

  QueryServiceOptions service_options;
  service_options.num_workers = 1;  // FIFO: results independent of timing
  service_options.queue_capacity = 64;
  QueryService service((*db)->executor(), &(*db)->table(), service_options,
                       &(*db)->metrics());

  MixedWorkloadOptions mixed;
  mixed.num_statements = kStatements;
  mixed.write_fraction = write_fraction;
  mixed.values_per_tuple = static_cast<size_t>(setup.int_columns);
  mixed.write_lo = setup.covered_hi + 1;
  mixed.write_hi = setup.value_max;
  mixed.victim_zipf_theta = 0.5;
  mixed.read_mix = {bench::PaperMix(0), bench::PaperMix(1)};
  MixedWorkloadGenerator generator(mixed, args.seed);

  LegResult leg;
  TraceHash hash;
  double read_ms = 0, dml_ms = 0, read_cost = 0;
  std::vector<Rid> live;  // generator-inserted rows, insertion order
  while (auto op = generator.Next()) {
    const auto start = std::chrono::steady_clock::now();
    if (op->kind == StatementKind::kSelect) {
      Result<QueryResult> result = service.Execute(op->query);
      if (!result.ok()) std::abort();
      const auto end = std::chrono::steady_clock::now();
      read_ms +=
          std::chrono::duration<double, std::milli>(end - start).count();
      read_cost += result->stats.cost;
      ++leg.reads;
      hash.Mix(0);
      hash.Mix(result->rids.size());
      for (const Rid& rid : result->rids) {
        hash.Mix((static_cast<uint64_t>(rid.page_id) << 16) | rid.slot);
      }
      hash.Mix(result->stats.pages_scanned);
      hash.Mix(result->stats.pages_skipped);
      hash.Mix(static_cast<uint64_t>(std::llround(result->stats.cost * 1e3)));
    } else {
      const std::string payload(1 + generator.position() % 64, 'w');
      Statement statement = Statement::Delete(Rid{0, 0});
      size_t victim_slot = 0;
      if (op->kind == StatementKind::kInsert) {
        statement = Statement::Insert(Tuple(op->values, {payload}));
      } else {
        victim_slot = live.size() - op->victim_rank;
        if (op->kind == StatementKind::kUpdate) {
          statement = Statement::Update(live[victim_slot],
                                        Tuple(op->values, {payload}));
        } else {
          statement = Statement::Delete(live[victim_slot]);
        }
      }
      Result<StatementResult> result = service.ExecuteStatement(statement);
      if (!result.ok()) std::abort();
      const auto end = std::chrono::steady_clock::now();
      dml_ms +=
          std::chrono::duration<double, std::milli>(end - start).count();
      ++leg.dml;
      if (op->kind == StatementKind::kInsert) {
        live.push_back(result->rids.front());
      } else if (op->kind == StatementKind::kUpdate) {
        live[victim_slot] = result->rids.front();
      } else {
        live.erase(live.begin() + static_cast<ptrdiff_t>(victim_slot));
      }
      hash.Mix(static_cast<uint64_t>(op->kind));
      for (const Rid& rid : result->rids) {
        hash.Mix((static_cast<uint64_t>(rid.page_id) << 16) | rid.slot);
      }
    }
  }
  service.Shutdown();

  // Final adaptive state: any nondeterminism in maintenance or adaptation
  // that the per-statement trace missed lands here.
  for (const auto& [index, buffer] : (*db)->space()->buffers()) {
    hash.Mix(static_cast<uint64_t>(index->column()));
    hash.Mix(index->EntryCount());
    hash.Mix(buffer->TotalEntries());
    hash.Mix(buffer->PartitionCount());
    for (size_t p = 0; p < buffer->counters().size(); ++p) {
      hash.Mix(buffer->counters().Get(p));
    }
  }

  leg.mean_read_cost = leg.reads > 0 ? read_cost / leg.reads : 0;
  leg.mean_read_ms = leg.reads > 0 ? read_ms / leg.reads : 0;
  leg.mean_dml_ms = leg.dml > 0 ? dml_ms / leg.dml : 0;
  leg.dml_executed = service.stats().dml_executed;
  leg.trace_hash = hash.state;
  return leg;
}

// ---------------------------------------------------------------------------
// Latch-contention sweep (--contention)

constexpr int kContentionReaders = 4;
constexpr size_t kContentionReadsPerReader = 2500;
constexpr Value kContentionBandWidth = 2000;

struct ContentionCell {
  const char* bands = "disjoint";
  int writers = 0;
  size_t reads = 0;
  size_t writes = 0;
  double read_qps = 0;
  int64_t latch_waits = 0;
  int64_t optimistic_retries = 0;
  int64_t optimistic_fallbacks = 0;
  bool reads_correct = true;
};

ContentionCell RunContentionCell(const bench::BenchArgs& args, int writers,
                                 bool disjoint) {
  PaperSetupOptions setup = bench::PaperSetup(args);
  auto db = BuildPaperDatabase(setup);
  if (!db.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 db.status().ToString().c_str());
    std::exit(2);
  }
  Database& d = **db;

  // Covered probe set, frozen up front: the writers work strictly above
  // covered_hi, so these result sets are invariant for the whole cell and
  // every concurrent probe can be checked exactly.
  constexpr int kProbeValues = 32;
  std::vector<Value> values;
  std::vector<std::vector<Rid>> expected;
  for (int i = 0; i < kProbeValues; ++i) {
    const Value v = 1 + (i * setup.covered_hi) / kProbeValues;
    values.push_back(v);
    std::vector<Rid> rids = d.FindRids(0, v);
    std::sort(rids.begin(), rids.end());
    expected.push_back(std::move(rids));
  }

  ContentionCell cell;
  cell.bands = disjoint ? "disjoint" : "overlapping";
  cell.writers = writers;
  const int64_t waits0 = d.metrics().Get(kMetricLatchWaits);
  const int64_t retries0 = d.metrics().Get(kMetricLatchOptimisticRetries);
  const int64_t fallbacks0 =
      d.metrics().Get(kMetricLatchOptimisticFallbacks);

  std::atomic<bool> stop{false};
  std::atomic<size_t> writes{0};
  std::atomic<bool> correct{true};
  std::vector<std::thread> writer_threads;
  for (int w = 0; w < writers; ++w) {
    writer_threads.emplace_back([&, w] {
      // Each writer mutates only rows it inserted itself; the bands
      // control whether writers collide on the same Index Buffer
      // partitions (overlapping) or not (disjoint).
      const Value band_lo = static_cast<Value>(
          setup.covered_hi + 1 + (disjoint ? w * kContentionBandWidth : 0));
      std::vector<Rid> mine;
      const std::string payload(48, 'w');
      for (size_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        const Value v =
            band_lo + static_cast<Value>(i % kContentionBandWidth);
        if (i % 8 == 5 && !mine.empty()) {
          const size_t slot = i % mine.size();
          Result<Rid> updated =
              d.Update(mine[slot], Tuple({v, v, v}, {payload}));
          if (updated.ok()) mine[slot] = updated.value();
        } else if (i % 16 == 12 && !mine.empty()) {
          (void)d.Delete(mine.back());
          mine.pop_back();
        } else {
          Result<Rid> inserted = d.Insert(Tuple({v, v, v}, {payload}));
          if (inserted.ok()) mine.push_back(inserted.value());
        }
        writes.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> reader_threads;
  for (int r = 0; r < kContentionReaders; ++r) {
    reader_threads.emplace_back([&, r] {
      for (size_t i = 0; i < kContentionReadsPerReader; ++i) {
        const size_t pick =
            (i * kContentionReaders + static_cast<size_t>(r)) %
            values.size();
        Result<QueryResult> result = d.Execute(Query::Point(0, values[pick]));
        if (!result.ok()) {
          correct.store(false, std::memory_order_relaxed);
          continue;
        }
        std::vector<Rid> rids = result->rids;
        std::sort(rids.begin(), rids.end());
        if (rids != expected[pick]) {
          correct.store(false, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : reader_threads) thread.join();
  const auto end = std::chrono::steady_clock::now();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& thread : writer_threads) thread.join();

  const double seconds = std::chrono::duration<double>(end - start).count();
  cell.reads = kContentionReaders * kContentionReadsPerReader;
  cell.writes = writes.load();
  cell.read_qps = static_cast<double>(cell.reads) / std::max(seconds, 1e-9);
  cell.latch_waits = d.metrics().Get(kMetricLatchWaits) - waits0;
  cell.optimistic_retries =
      d.metrics().Get(kMetricLatchOptimisticRetries) - retries0;
  cell.optimistic_fallbacks =
      d.metrics().Get(kMetricLatchOptimisticFallbacks) - fallbacks0;
  cell.reads_correct = correct.load();
  return cell;
}

int RunContention(const bench::BenchArgs& args) {
  std::cout << "Latch-contention sweep — " << args.num_tuples << " tuples, "
            << kContentionReaders << " readers x "
            << kContentionReadsPerReader
            << " covered probes per cell, writers in bands above "
               "covered_hi\n\n";

  std::vector<ContentionCell> cells;
  cells.push_back(RunContentionCell(args, 0, true));  // baseline
  for (int writers : {1, 4, 8}) {
    for (bool disjoint : {true, false}) {
      cells.push_back(RunContentionCell(args, writers, disjoint));
    }
  }

  bool correct_ok = true;
  std::printf("%-12s %8s %8s %8s %12s %12s %10s %10s\n", "bands", "writers",
              "reads", "writes", "read QPS", "latch waits", "opt retry",
              "opt fback");
  for (const ContentionCell& cell : cells) {
    correct_ok = correct_ok && cell.reads_correct;
    std::printf("%-12s %8d %8zu %8zu %12.0f %12lld %10lld %10lld%s\n",
                cell.bands, cell.writers, cell.reads, cell.writes,
                cell.read_qps, static_cast<long long>(cell.latch_waits),
                static_cast<long long>(cell.optimistic_retries),
                static_cast<long long>(cell.optimistic_fallbacks),
                cell.reads_correct ? "" : "  READS WRONG");
  }

  const auto find_cell = [&](int writers, const char* bands) {
    for (const ContentionCell& cell : cells) {
      if (cell.writers == writers && std::string(cell.bands) == bands) {
        return cell;
      }
    }
    return cells.front();
  };
  const double baseline_qps = cells.front().read_qps;
  const double qps_ratio =
      find_cell(4, "disjoint").read_qps / std::max(baseline_qps, 1e-9);
  // Deliberately lenient: the claim is "disjoint writers do not serialize
  // readers", i.e. the ratio is O(1) rather than O(1/writers); 0.2 leaves
  // room for scheduler noise on loaded CI machines.
  const bool qps_ok = qps_ratio >= 0.2;
  std::cout << "\ncovered-probe correctness under concurrent DML: "
            << (correct_ok ? "OK" : "FAIL") << "\n"
            << "read-QPS gate: 4 disjoint-band writers "
            << FormatDouble(qps_ratio, 3)
            << " of baseline >= 0.2: " << (qps_ok ? "OK" : "FAIL") << "\n";

  if (args.json_path.has_value()) {
    std::ostringstream json;
    json << "{\n"
         << "  \"bench\": \"latch_contention\",\n"
         << "  \"scale\": \"" << args.scale << "\",\n"
         << "  \"readers\": " << kContentionReaders << ",\n"
         << "  \"reads_per_reader\": " << kContentionReadsPerReader << ",\n"
         << "  \"cells\": [\n";
    for (size_t i = 0; i < cells.size(); ++i) {
      const ContentionCell& cell = cells[i];
      json << "    {\"writers\": " << cell.writers << ", \"bands\": \""
           << cell.bands << "\", \"read_qps\": "
           << FormatDouble(cell.read_qps, 1)
           << ", \"writes\": " << cell.writes
           << ", \"latch_waits\": " << cell.latch_waits
           << ", \"optimistic_retries\": " << cell.optimistic_retries
           << ", \"optimistic_fallbacks\": " << cell.optimistic_fallbacks
           << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"qps_ratio_disjoint_4w\": " << FormatDouble(qps_ratio, 3)
         << ",\n"
         << "  \"reads_correct\": " << (correct_ok ? "true" : "false")
         << ",\n"
         << "  \"qps_gate_ok\": " << (qps_ok ? "true" : "false") << "\n}\n";
    std::ofstream out(*args.json_path);
    if (!out.is_open()) {
      std::fprintf(stderr, "cannot open %s\n", args.json_path->c_str());
      return 1;
    }
    out << json.str();
  }

  if (!correct_ok) return 1;  // wrong answers are fatal even without --check
  return (!args.check || qps_ok) ? 0 : 1;
}

int Run(const bench::BenchArgs& args) {
  std::cout << "Mixed-workload bench — " << args.num_tuples << " tuples, "
            << kStatements << " statements per leg, seed=" << args.seed
            << ", 1-worker service\n\n";

  const double fractions[] = {0.0, 0.1, 0.3};
  const char* names[] = {"read-only", "mixed-10", "mixed-30"};
  LegResult legs[3];
  bool determinism_ok = true;
  for (int i = 0; i < 3; ++i) {
    const LegResult first = RunLeg(args, fractions[i]);
    legs[i] = RunLeg(args, fractions[i]);  // second run is the warmed report
    if (first.trace_hash != legs[i].trace_hash) {
      std::cout << names[i] << ": trace hash differs between identical runs\n";
      determinism_ok = false;
    }
    if (legs[i].dml_executed != static_cast<int64_t>(legs[i].dml)) {
      std::cout << names[i] << ": service dml_executed "
                << legs[i].dml_executed << " != driven " << legs[i].dml
                << "\n";
      determinism_ok = false;
    }
    std::printf(
        "%-9s  reads %4zu  dml %4zu  read cost %10.1f  read %7.3f ms  "
        "dml %7.3f ms\n",
        names[i], legs[i].reads, legs[i].dml, legs[i].mean_read_cost,
        legs[i].mean_read_ms, legs[i].mean_dml_ms);
  }

  std::cout << "\ndeterminism (two identical runs per leg, trace + final "
               "state): "
            << (determinism_ok ? "OK" : "FAIL") << "\n";

  // Gate 2 compares cost-model units, not wall time: deterministic for a
  // given seed, so the gate cannot flake on a loaded CI machine.
  const double cost_ratio =
      legs[1].mean_read_cost / std::max(legs[0].mean_read_cost, 1e-9);
  const bool regression_ok = cost_ratio <= 3.0;
  std::cout << "read-cost gate: mixed-10/read-only "
            << FormatDouble(cost_ratio, 3)
            << " <= 3.0: " << (regression_ok ? "OK" : "FAIL") << "\n";

  if (args.json_path.has_value()) {
    std::ostringstream json;
    json << "{\n"
         << "  \"bench\": \"mixed_workload\",\n"
         << "  \"scale\": \"" << args.scale << "\",\n"
         << "  \"statements\": " << kStatements << ",\n"
         << "  \"legs\": [\n";
    for (int i = 0; i < 3; ++i) {
      json << "    {\"write_fraction\": " << FormatDouble(fractions[i], 1)
           << ", \"reads\": " << legs[i].reads
           << ", \"dml\": " << legs[i].dml << ", \"mean_read_cost\": "
           << FormatDouble(legs[i].mean_read_cost, 1)
           << ", \"mean_read_ms\": " << FormatDouble(legs[i].mean_read_ms, 3)
           << ", \"mean_dml_ms\": " << FormatDouble(legs[i].mean_dml_ms, 3)
           << "}" << (i < 2 ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"read_cost_ratio_10\": " << FormatDouble(cost_ratio, 3)
         << ",\n"
         << "  \"determinism_ok\": " << (determinism_ok ? "true" : "false")
         << ",\n"
         << "  \"regression_ok\": " << (regression_ok ? "true" : "false")
         << "\n}\n";
    std::ofstream out(*args.json_path);
    if (!out.is_open()) {
      std::fprintf(stderr, "cannot open %s\n", args.json_path->c_str());
      return 1;
    }
    out << json.str();
  }

  if (!args.check) return determinism_ok ? 0 : 1;
  return (determinism_ok && regression_ok) ? 0 : 1;
}

}  // namespace
}  // namespace aib

int main(int argc, char** argv) {
  const aib::bench::BenchArgs args = aib::bench::ParseArgs(argc, argv);
  return args.contention ? aib::RunContention(args) : aib::Run(args);
}
