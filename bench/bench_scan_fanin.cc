// Perf + correctness gate for predictive buffer management: the async
// I/O scheduler (storage/io_scheduler.h), relevance-ordered page staging,
// and the segmented scan-resistant eviction policy.
//
// Leg A — scan fan-in. N identical full scans of an unindexed column run
// concurrently through a QueryService over a buffer pool much smaller
// than the table, in two configurations:
//
//   baseline    — pure LRU eviction, no I/O scheduler, shared scans off:
//                 every scan pays its own pass and the passes thrash each
//                 other out of the pool;
//   predictive  — segmented eviction + I/O scheduler + shared scans: the
//                 scan set is registered with the scheduler, pages are
//                 staged ahead of the cursor, and one pass serves all N.
//
// The page-reuse ratio (exec.scan_pages_served / storage.pages_read,
// measured as deltas around the timed region) is the paper-facing number:
// pages delivered to scan consumers per distinct page fetched from disk.
//
// Leg B — eviction thrash. A deterministic single-threaded BufferPool
// workload: a small hot set is re-referenced while a long sequential
// sweep floods the pool. Under pure LRU the sweep evicts the hot set
// every round; under the segmented policy the promoted hot set is
// untouchable by single-touch sweep pages.
//
// Gates with --check:
//   1. correctness (always): sorted rids identical between baseline and
//      predictive at every fan-in.
//   2. reuse ratio at fan-in 8: predictive >= 1.5x baseline.
//   3. wall clock at fan-in 1: predictive <= control * 1.30 + 5 ms, where
//      control is the seed configuration (shared scans on, LRU, no
//      scheduler) — the pipeline must not tax solo scans relative to the
//      system it replaced.
//   4. thrash: segmented hot-set hit rate >= 0.75 and >= LRU + 0.25.
//
// --json=PATH emits the numbers for CI artifacts (BENCH_scan_fanin.json).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "service/query_service.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/database.h"

namespace aib {
namespace {

constexpr Value kValueMin = 1;
constexpr Value kValueMax = 50000;

struct Config {
  const char* name;
  EvictionPolicy policy;
  bool io_scheduler;
  bool shared_scans;
};

/// The classic solo-pass LRU buffer manager the paper compares against:
/// every scan pays its own pass.
constexpr Config kBaseline = {"baseline", EvictionPolicy::kLru,
                              /*io_scheduler=*/false, /*shared_scans=*/false};
/// The seed configuration of this repo (QueryService defaults): scans
/// already cooperate, but the pool is pure LRU and staging is synchronous.
/// This is the control for the wall gate — it isolates the cost of the
/// scheduler + segmented eviction from the cost of the (pre-existing)
/// shared-scan machinery, whose per-page attach window taxes solo scans
/// by design (see SharedScanManager).
constexpr Config kControl = {"control", EvictionPolicy::kLru,
                             /*io_scheduler=*/false, /*shared_scans=*/true};
constexpr Config kPredictive = {"predictive", EvictionPolicy::kSegmented,
                                /*io_scheduler=*/true, /*shared_scans=*/true};

struct FanInResult {
  double wall_ms = 0;
  double reuse_ratio = 0;
  int64_t pages_read = 0;
  int64_t pages_served = 0;
  double queue_depth_p95 = 0;
  std::vector<Rid> sorted_rids;  // of one scan (all scans return the same)
};

/// Builds a fresh single-table world whose buffer pool holds only a
/// quarter of the table, so full scans are eviction-bound and reuse across
/// concurrent scans is the only way to save page reads.
std::unique_ptr<Database> MakeWorld(const bench::BenchArgs& args,
                                    const Config& config) {
  DatabaseOptions options;
  options.enable_index_buffer = false;
  options.eviction_policy = config.policy;
  options.enable_io_scheduler = config.io_scheduler;
  options.io.workers = 2;
  // Sized after the table below: ~20 tuples/page.
  options.buffer_pool_pages = std::max<size_t>(64, args.num_tuples / 20 / 4);
  options.max_tuples_per_page = 20;
  auto db = std::make_unique<Database>(Schema::PaperSchema(1, 16), options);
  Rng rng(args.seed);
  for (size_t i = 0; i < args.num_tuples; ++i) {
    db->LoadTuple(Tuple({static_cast<Value>(
                            rng.UniformInt(kValueMin, kValueMax))},
                        {"pay"}))
        .value();
  }
  return db;
}

/// Runs `fanin` identical full scans concurrently and reports the median
/// wall time over args.reps batches plus reuse-ratio deltas accumulated
/// across the timed batches.
FanInResult RunFanIn(const bench::BenchArgs& args, const Config& config,
                     size_t fanin) {
  std::unique_ptr<Database> db = MakeWorld(args, config);
  QueryServiceOptions service_options;
  service_options.num_workers = fanin;
  service_options.queue_capacity = fanin * 4;
  service_options.shared_scans = config.shared_scans;
  QueryService service(db->executor(), &db->table(), service_options,
                       &db->metrics());
  // The whole uncovered range: a non-point predicate on a column with no
  // partial index, so it takes the full-scan path (shared when enabled).
  const Query query = Query::Range(0, 5001, kValueMax);

  FanInResult result;
  auto run_batch = [&] {
    std::vector<std::future<Result<QueryResult>>> futures;
    futures.reserve(fanin);
    for (size_t i = 0; i < fanin; ++i) {
      futures.push_back(service.Submit(query).value());
    }
    for (size_t i = 0; i < fanin; ++i) {
      Result<QueryResult> r = futures[i].get();
      if (!r.ok()) {
        std::fprintf(stderr, "scan failed: %s\n", r.status().ToString().c_str());
        std::abort();
      }
      if (i == 0) {
        result.sorted_rids = r.value().rids;
        std::sort(result.sorted_rids.begin(), result.sorted_rids.end());
      }
    }
  };

  run_batch();  // warmup (also primes the pool to its steady state)
  const int64_t served0 = db->metrics().Get(kMetricScanPagesServed);
  const int64_t read0 = db->metrics().Get(kMetricPagesRead);
  result.wall_ms = bench::MedianWallMs(args.reps, run_batch);
  // MedianWallMs runs one extra warmup batch; the deltas below span all
  // reps + 1 batches, which is fine — the ratio is scale-free.
  result.pages_served = db->metrics().Get(kMetricScanPagesServed) - served0;
  result.pages_read = db->metrics().Get(kMetricPagesRead) - read0;
  result.reuse_ratio =
      result.pages_read == 0
          ? 0
          : static_cast<double>(result.pages_served) / result.pages_read;
  result.queue_depth_p95 =
      db->metrics().HistogramCopy(kMetricIoQueueDepth).Percentile(0.95);
  return result;
}

struct ThrashResult {
  double hot_hit_rate = 0;
};

/// Deterministic eviction-thrash microbenchmark: 16 hot pages re-fetched
/// between rounds of a 1000-page sequential sweep through a 64-frame pool.
ThrashResult RunThrash(EvictionPolicy policy) {
  constexpr size_t kFrames = 64;
  constexpr size_t kHotPages = 16;
  constexpr size_t kSweepPages = 1000;
  constexpr size_t kSweepStride = 100;  // hot round every 100 sweep pages

  DiskManager disk(4096);
  BufferPoolOptions options;
  options.policy = policy;
  BufferPool pool(&disk, kFrames, nullptr, options);

  std::vector<PageId> hot;
  for (size_t i = 0; i < kHotPages; ++i) hot.push_back(disk.AllocatePage());
  std::vector<PageId> sweep;
  for (size_t i = 0; i < kSweepPages; ++i) sweep.push_back(disk.AllocatePage());

  auto touch = [&](PageId id) {
    pool.FetchPage(id).value();
    (void)pool.UnpinPage(id, false);
  };
  // Two passes over the hot set: the second is the re-reference that
  // promotes each hot page into the protected segment (kSegmented).
  for (PageId id : hot) touch(id);
  for (PageId id : hot) touch(id);

  size_t hot_accesses = 0;
  size_t hot_hits = 0;
  for (size_t s = 0; s < kSweepPages; ++s) {
    touch(sweep[s]);
    if ((s + 1) % kSweepStride == 0) {
      for (PageId id : hot) {
        const int64_t misses_before = pool.misses();
        touch(id);
        ++hot_accesses;
        if (pool.misses() == misses_before) ++hot_hits;
      }
    }
  }
  ThrashResult result;
  result.hot_hit_rate =
      hot_accesses == 0 ? 0 : static_cast<double>(hot_hits) / hot_accesses;
  return result;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

int Run(const bench::BenchArgs& args) {
  std::cout << "Scan fan-in bench — " << args.num_tuples
            << " tuples, reps=" << args.reps << "\n\n";

  const std::vector<size_t> fanins = {1, 8};
  std::vector<FanInResult> baseline_runs;
  std::vector<FanInResult> predictive_runs;
  const FanInResult control_run = RunFanIn(args, kControl, 1);
  bool correctness_ok = true;
  for (size_t fanin : fanins) {
    baseline_runs.push_back(RunFanIn(args, kBaseline, fanin));
    predictive_runs.push_back(RunFanIn(args, kPredictive, fanin));
    const FanInResult& base = baseline_runs.back();
    const FanInResult& pred = predictive_runs.back();
    if (base.sorted_rids != pred.sorted_rids) {
      std::cout << "rids differ between configs at fan-in " << fanin << "\n";
      correctness_ok = false;
    }
    std::printf("fan-in %zu:\n", fanin);
    std::printf("  baseline:   %8.3f ms  reuse %5.2f  (%lld served / %lld read)\n",
                base.wall_ms, base.reuse_ratio,
                static_cast<long long>(base.pages_served),
                static_cast<long long>(base.pages_read));
    if (fanin == 1) {
      std::printf("  control:    %8.3f ms  reuse %5.2f\n", control_run.wall_ms,
                  control_run.reuse_ratio);
    }
    std::printf("  predictive: %8.3f ms  reuse %5.2f  (%lld served / %lld read)"
                "  io queue p95 %.0f\n",
                pred.wall_ms, pred.reuse_ratio,
                static_cast<long long>(pred.pages_served),
                static_cast<long long>(pred.pages_read),
                pred.queue_depth_p95);
  }
  if (control_run.sorted_rids != predictive_runs[0].sorted_rids) {
    std::cout << "rids differ between control and predictive\n";
    correctness_ok = false;
  }

  const ThrashResult lru_thrash = RunThrash(EvictionPolicy::kLru);
  const ThrashResult seg_thrash = RunThrash(EvictionPolicy::kSegmented);
  std::printf("\nthrash hot-set hit rate: lru %.3f, segmented %.3f\n\n",
              lru_thrash.hot_hit_rate, seg_thrash.hot_hit_rate);

  // --- Gates ----------------------------------------------------------------
  int failures = 0;
  std::cout << "correctness (baseline rids == predictive rids): "
            << (correctness_ok ? "OK" : "FAIL") << "\n";
  if (!correctness_ok) ++failures;

  const double reuse_base = baseline_runs[1].reuse_ratio;
  const double reuse_pred = predictive_runs[1].reuse_ratio;
  const bool reuse_gate = reuse_pred >= 1.5 * reuse_base;
  std::cout << "reuse gate:  predictive " << FormatDouble(reuse_pred, 2)
            << " >= 1.5 x baseline " << FormatDouble(reuse_base, 2)
            << " at fan-in 8: " << (reuse_gate ? "OK" : "FAIL") << "\n";
  if (!reuse_gate) ++failures;

  const double wall_control = control_run.wall_ms;
  const double wall_pred = predictive_runs[0].wall_ms;
  const bool wall_gate = wall_pred <= wall_control * 1.30 + 5.0;
  std::cout << "wall gate:   predictive " << FormatDouble(wall_pred, 3)
            << " ms <= control " << FormatDouble(wall_control, 3)
            << " x 1.30 + 5 ms at fan-in 1: " << (wall_gate ? "OK" : "FAIL")
            << "\n";
  if (!wall_gate) ++failures;

  const bool thrash_gate =
      seg_thrash.hot_hit_rate >= 0.75 &&
      seg_thrash.hot_hit_rate >= lru_thrash.hot_hit_rate + 0.25;
  std::cout << "thrash gate: segmented "
            << FormatDouble(seg_thrash.hot_hit_rate, 3)
            << " >= 0.75 and >= lru "
            << FormatDouble(lru_thrash.hot_hit_rate, 3)
            << " + 0.25: " << (thrash_gate ? "OK" : "FAIL") << "\n";
  if (!thrash_gate) ++failures;

  if (args.json_path.has_value()) {
    std::ostringstream json;
    json << "{\n"
         << "  \"bench\": \"scan_fanin\",\n"
         << "  \"scale\": \"" << args.scale << "\",\n"
         << "  \"fanin_1\": {\n"
         << "    \"baseline_ms\": "
         << FormatDouble(baseline_runs[0].wall_ms, 3) << ",\n"
         << "    \"control_ms\": " << FormatDouble(wall_control, 3) << ",\n"
         << "    \"predictive_ms\": " << FormatDouble(wall_pred, 3) << ",\n"
         << "    \"baseline_reuse\": "
         << FormatDouble(baseline_runs[0].reuse_ratio, 3) << ",\n"
         << "    \"predictive_reuse\": "
         << FormatDouble(predictive_runs[0].reuse_ratio, 3) << "\n"
         << "  },\n"
         << "  \"fanin_8\": {\n"
         << "    \"baseline_ms\": "
         << FormatDouble(baseline_runs[1].wall_ms, 3) << ",\n"
         << "    \"predictive_ms\": "
         << FormatDouble(predictive_runs[1].wall_ms, 3) << ",\n"
         << "    \"baseline_reuse\": " << FormatDouble(reuse_base, 3) << ",\n"
         << "    \"predictive_reuse\": " << FormatDouble(reuse_pred, 3)
         << ",\n"
         << "    \"io_queue_depth_p95\": "
         << FormatDouble(predictive_runs[1].queue_depth_p95, 1) << "\n"
         << "  },\n"
         << "  \"thrash\": {\n"
         << "    \"lru_hot_hit_rate\": "
         << FormatDouble(lru_thrash.hot_hit_rate, 3) << ",\n"
         << "    \"segmented_hot_hit_rate\": "
         << FormatDouble(seg_thrash.hot_hit_rate, 3) << "\n"
         << "  },\n"
         << "  \"correctness_ok\": " << (correctness_ok ? "true" : "false")
         << "\n}\n";
    std::ofstream out(*args.json_path);
    if (!out.is_open()) {
      std::fprintf(stderr, "cannot open %s\n", args.json_path->c_str());
      return 1;
    }
    out << json.str();
  }

  if (!args.check) return correctness_ok ? 0 : 1;
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace aib

int main(int argc, char** argv) {
  return aib::Run(aib::bench::ParseArgs(argc, argv));
}
