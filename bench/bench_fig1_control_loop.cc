// Figure 1: Control Loop Delay in Adaptive Partial Indexing.
//
// Reproduces the paper's introductory simulation: a single integer column
// queried 500 times; the online tuner indexes a value after it was queried
// >= 6 times within the last 20 queries and evicts least-recently-used
// values beyond a capacity of 15. Between query 200 and 300 the workload
// focus shifts from values < 15 to values > 15.
//
// Printed series (the figure's three elements):
//   - queried value per query,
//   - the indexed value range (min/max of the partial index coverage),
//   - the partial-index hit rate over a 25-query moving window.
//
// Expected shape: the indexed range follows the queried range with a delay
// of roughly 100-200 queries; the hit rate collapses during the shift and
// recovers only after the tuner caught up — the control loop delay the
// Adaptive Index Buffer is designed to bridge.

#include <algorithm>
#include <deque>
#include <iostream>

#include "bench_util.h"
#include "common/csv_writer.h"

namespace aib {
namespace {

int Run(const bench::BenchArgs& args) {
  // The Fig. 1 simulation is value-domain based; a compact table keeps the
  // tuner's adaptation scans cheap without changing the control loop.
  PaperSetupOptions setup = bench::PaperSetup(args);
  setup.num_tuples = std::min<size_t>(args.num_tuples, 30000);
  setup.value_min = 1;
  setup.value_max = 30;
  setup.covered_lo = 1;
  setup.covered_hi = 15;
  setup.int_columns = 1;
  setup.payload_max = 16;
  setup.db.enable_index_buffer = false;  // Fig. 1 shows plain tuning
  Result<std::unique_ptr<Database>> db_or = BuildPaperDatabase(setup);
  if (!db_or.ok()) {
    std::cerr << "setup failed: " << db_or.status().ToString() << "\n";
    return 1;
  }
  std::unique_ptr<Database> db = std::move(db_or).value();

  IndexTunerOptions tuner_options;
  tuner_options.window_size = 20;
  tuner_options.index_threshold = 6;
  tuner_options.max_indexed_values = 15;
  if (Status s = db->AttachTuner(0, tuner_options); !s.ok()) {
    std::cerr << "tuner failed: " << s.ToString() << "\n";
    return 1;
  }

  Rng rng(args.seed);
  std::deque<bool> hit_window;
  size_t hits_in_window = 0;

  auto csv = bench::OpenCsv(args);
  CsvWriter csv_writer(csv != nullptr ? *csv : std::cout);
  if (csv != nullptr) {
    csv_writer.WriteHeader({"query", "queried_value", "indexed_min",
                            "indexed_max", "hit", "hit_rate_ma25"});
  }

  ConsoleTable table(
      {"query", "queried", "indexed_range", "hit_rate(ma25)"});

  const size_t kQueries = 500;
  for (size_t q = 0; q < kQueries; ++q) {
    // Workload: a narrow queried value *band* (the shaded range in the
    // paper's figure). Its center sits at 8 (values < 15), ramps to 23
    // (values > 15) between query 200 and 300, and stays there. Values
    // repeat often enough within the band that the 6-in-20 threshold is
    // reachable — yet rarely enough that adaptation lags the workload.
    double center = 8.0;
    if (q >= 300) {
      center = 23.0;
    } else if (q >= 200) {
      center = 8.0 + 15.0 * static_cast<double>(q - 200) / 100.0;
    }
    const Value value = static_cast<Value>(std::clamp<int64_t>(
        static_cast<int64_t>(center) + rng.UniformInt(-2, 2), 1, 30));

    const bool hit = db->GetIndex(0)->Covers(value);
    Result<QueryResult> result = db->Execute(Query::Point(0, value));
    if (!result.ok()) {
      std::cerr << "query failed: " << result.status().ToString() << "\n";
      return 1;
    }

    hit_window.push_back(hit);
    hits_in_window += hit ? 1 : 0;
    if (hit_window.size() > 25) {
      hits_in_window -= hit_window.front() ? 1 : 0;
      hit_window.pop_front();
    }
    const double hit_rate =
        static_cast<double>(hits_in_window) / hit_window.size();

    // The indexed value range = the coverage's extremes.
    Value indexed_min = 0;
    Value indexed_max = 0;
    bool first_interval = true;
    db->GetIndex(0)->coverage().ForEachInterval([&](Value lo, Value hi) {
      if (first_interval) indexed_min = lo;
      indexed_max = hi;
      first_interval = false;
    });

    if (csv != nullptr) {
      csv_writer.Row(q, value, indexed_min, indexed_max, hit ? 1 : 0,
                     FormatDouble(hit_rate, 3));
    }
    if (q % 20 == 0 || q == kQueries - 1) {
      table.AddRow({std::to_string(q), std::to_string(value),
                    "[" + std::to_string(indexed_min) + "," +
                        std::to_string(indexed_max) + "]",
                    FormatDouble(hit_rate, 2)});
    }
  }

  std::cout << "Figure 1 — Control Loop Delay in Adaptive Partial Indexing\n"
            << "(window=20, threshold=6, LRU capacity=15; workload shifts "
               "from values <=15 to >15 between query 200 and 300)\n\n";
  table.Print(std::cout);
  std::cout << "\nShape check: the indexed range should still be [1,15] "
               "well past query 200, follow the queried band only with a "
               "lag of ~50-150 queries, and the hit rate should collapse "
               "during the shift and recover afterwards — that lag is the "
               "control loop delay.\n";
  return 0;
}

}  // namespace
}  // namespace aib

int main(int argc, char** argv) {
  return aib::Run(aib::bench::ParseArgs(argc, argv));
}
