#ifndef AIB_BENCH_BENCH_UTIL_H_
#define AIB_BENCH_BENCH_UTIL_H_

// Shared scaffolding of the figure-reproduction benches. Each bench binary
// reproduces one table/figure of the paper: it builds the paper's data
// setup (scaled by --scale), replays the experiment's workload, and prints
// the per-query series the figure plots, as an aligned console table and,
// with --csv <path>, as CSV.
//
// Scales:
//   --scale=small   50,000 tuples  (quick smoke run; the default, so that
//                                   `for b in build/bench/*; do $b; done`
//                                   finishes in minutes)
//   --scale=medium 100,000 tuples
//   --scale=paper  500,000 tuples  (the paper's 220 MB table)
//
// Absolute runtimes differ from the 2012 H2/Java/SSD testbed by
// construction; the series *shapes* are the reproduction target (see
// EXPERIMENTS.md).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "workload/experiment.h"

namespace aib::bench {

struct BenchArgs {
  size_t num_tuples = 50000;
  std::string scale = "small";
  std::optional<std::string> csv_path;
  uint64_t seed = 1;
  /// Parallel-scan worker count (--workers=N; benches that fan out).
  size_t workers = 4;
  /// Timed repetitions per measurement (--reps=K; median is reported).
  int reps = 5;
  /// JSON result sink (--json=PATH; benches that gate in CI emit one).
  std::optional<std::string> json_path;
  /// Exit nonzero when a regression/correctness gate fails (--check).
  bool check = false;
  /// Secondary mode switch (--contention): benches that also host a
  /// latch-contention sweep run it instead of their primary legs.
  bool contention = false;
};

inline BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* prefix) -> std::optional<std::string> {
      const size_t len = std::strlen(prefix);
      if (arg.rfind(prefix, 0) == 0) return arg.substr(len);
      return std::nullopt;
    };
    if (auto v = value_of("--scale=")) {
      args.scale = *v;
      if (*v == "small") {
        args.num_tuples = 50000;
      } else if (*v == "medium") {
        args.num_tuples = 100000;
      } else if (*v == "paper") {
        args.num_tuples = 500000;
      } else {
        std::fprintf(stderr, "unknown --scale=%s (small|medium|paper)\n",
                     v->c_str());
        std::exit(2);
      }
    } else if (auto v = value_of("--csv=")) {
      args.csv_path = *v;
    } else if (auto v = value_of("--seed=")) {
      args.seed = std::stoull(*v);
    } else if (auto v = value_of("--workers=")) {
      args.workers = std::stoull(*v);
    } else if (auto v = value_of("--reps=")) {
      args.reps = std::stoi(*v);
    } else if (auto v = value_of("--json=")) {
      args.json_path = *v;
    } else if (arg == "--check") {
      args.check = true;
    } else if (arg == "--contention") {
      args.contention = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--scale=small|medium|paper] [--csv=PATH] "
          "[--seed=N] [--workers=N] [--reps=K] [--json=PATH] [--check] "
          "[--contention]\n",
          argv[0]);
      std::exit(0);
    }
  }
  return args;
}

/// The paper's common data setup (§V), at the requested scale. The value
/// domain and the 10%% coverage are kept constant across scales so query
/// selectivities match the paper.
inline PaperSetupOptions PaperSetup(const BenchArgs& args) {
  PaperSetupOptions options;
  options.num_tuples = args.num_tuples;
  options.value_min = 1;
  options.value_max = 50000;
  options.covered_lo = 1;
  options.covered_hi = 5000;
  options.payload_min = 1;
  options.payload_max = 512;
  options.seed = args.seed;
  return options;
}

/// The paper's uncovered-values-only query mix for one column.
inline ColumnMix PaperMix(ColumnId column, double weight = 1.0,
                          double hit_rate = 0.0) {
  ColumnMix mix;
  mix.column = column;
  mix.weight = weight;
  mix.hit_rate = hit_rate;
  mix.covered_lo = 1;
  mix.covered_hi = 5000;
  mix.uncovered_lo = 5001;
  mix.uncovered_hi = 50000;
  return mix;
}

/// Runs `fn` once untimed (warmup: page cache, allocator pools, branch
/// predictors), then `reps` timed repetitions, and returns the median
/// wall-clock milliseconds. The median over warmed repetitions is what
/// makes bench deltas stable enough to gate CI on.
template <typename Fn>
inline double MedianWallMs(int reps, Fn&& fn) {
  fn();  // warmup
  std::vector<double> ms;
  ms.reserve(static_cast<size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto end = std::chrono::steady_clock::now();
    ms.push_back(
        std::chrono::duration<double, std::milli>(end - start).count());
  }
  std::sort(ms.begin(), ms.end());
  return ms[ms.size() / 2];
}

/// Opens the CSV sink if requested; returns nullptr otherwise.
inline std::unique_ptr<std::ofstream> OpenCsv(const BenchArgs& args) {
  if (!args.csv_path.has_value()) return nullptr;
  auto out = std::make_unique<std::ofstream>(*args.csv_path);
  if (!out->is_open()) {
    std::fprintf(stderr, "cannot open %s\n", args.csv_path->c_str());
    std::exit(2);
  }
  return out;
}

}  // namespace aib::bench

#endif  // AIB_BENCH_BENCH_UTIL_H_
