// Baseline comparison: Adaptive Index Buffer vs a Shinobi-style
// partitioning tuner (§VI).
//
// The paper's critique of Shinobi: it realizes partial indexing by
// physically splitting the table into interesting/uninteresting tuples and
// indexing the interesting partition completely, so (a) every index of the
// table indexes the same tuple set (memory amplification with multiple
// columns) and (b) adaptation means physically moving tuples. "The Index
// Buffer allows page skipping without limiting the power of partial
// indexing."
//
// Both systems run the same multi-column workload with the same
// window/threshold adaptation opportunities; reported per system:
// cumulative query cost, cumulative adaptation cost (buffer inserts /
// tuple moves), and index memory in entries.

#include <iostream>
#include <vector>

#include "baseline/shinobi.h"
#include "bench_util.h"
#include "common/csv_writer.h"

namespace aib {
namespace {

struct SystemResult {
  double query_cost = 0;
  double adapt_cost = 0;
  size_t index_entries = 0;
};

/// The shared workload: per-column repeated-value bursts so both systems'
/// window/threshold policies can react; columns weighted 3:2:1.
struct WorkloadItem {
  ColumnId column;
  Value value;
};

std::vector<WorkloadItem> MakeWorkload(uint64_t seed, size_t queries) {
  Rng rng(seed);
  std::vector<WorkloadItem> items;
  items.reserve(queries);
  // Hot sets of ~12 values per column within the uncovered range; drawn
  // with repetition so the 6-in-20 threshold fires.
  std::vector<std::vector<Value>> hot_sets(3);
  for (auto& hot_set : hot_sets) {
    for (int i = 0; i < 12; ++i) {
      hot_set.push_back(static_cast<Value>(rng.UniformInt(5001, 50000)));
    }
  }
  const std::vector<double> weights = {3, 2, 1};
  for (size_t q = 0; q < queries; ++q) {
    const ColumnId column = static_cast<ColumnId>(rng.WeightedIndex(weights));
    const auto& hot_set = hot_sets[column];
    const Value value =
        hot_set[static_cast<size_t>(rng.UniformInt(0, 2))];  // skew inside
    items.push_back({column, value});
  }
  return items;
}

Result<SystemResult> RunAib(const bench::BenchArgs& args,
                            const std::vector<WorkloadItem>& workload) {
  PaperSetupOptions setup = bench::PaperSetup(args);
  setup.db.space.max_entries = 0;  // Exp.-1 configuration (unbounded)
  setup.db.space.max_pages_per_scan = args.num_tuples / 100;
  setup.db.buffer.partition_pages = args.num_tuples / 50;
  AIB_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                       BuildPaperDatabase(setup));
  SystemResult result;
  for (const WorkloadItem& item : workload) {
    AIB_ASSIGN_OR_RETURN(QueryResult r,
                         db->Execute(Query::Point(item.column, item.value)));
    result.query_cost += r.stats.cost;
    result.adapt_cost += static_cast<double>(r.stats.entries_added) *
                         db->options().cost.buffer_insert_cost;
  }
  for (ColumnId c = 0; c < 3; ++c) {
    result.index_entries += db->GetBuffer(c)->TotalEntries();
    result.index_entries += db->GetIndex(c)->EntryCount();
  }
  return result;
}

SystemResult RunShinobi(const bench::BenchArgs& args,
                        const std::vector<WorkloadItem>& workload) {
  ShinobiBaseline::Options options;
  options.tuples_per_page = 28;  // the paper setup's effective density
  options.window_size = 20;
  options.promote_threshold = 3;  // give the value-granular policy a fair
                                  // chance to fire on this workload
  ShinobiBaseline shinobi(3, options);
  Rng rng(args.seed);
  for (size_t i = 0; i < args.num_tuples; ++i) {
    shinobi.AddTuple({static_cast<Value>(rng.UniformInt(1, 50000)),
                      static_cast<Value>(rng.UniformInt(1, 50000)),
                      static_cast<Value>(rng.UniformInt(1, 50000))});
  }
  SystemResult result;
  for (const WorkloadItem& item : workload) {
    const auto stats = shinobi.Execute(item.column, item.value);
    result.query_cost += stats.query_cost;
    result.adapt_cost += stats.move_cost;
  }
  result.index_entries = shinobi.IndexEntryCount();
  return result;
}

int Run(const bench::BenchArgs& args) {
  const std::vector<WorkloadItem> workload = MakeWorkload(args.seed, 200);

  Result<SystemResult> aib = RunAib(args, workload);
  if (!aib.ok()) {
    std::cerr << aib.status().ToString() << "\n";
    return 1;
  }
  const SystemResult shinobi = RunShinobi(args, workload);

  ConsoleTable table({"system", "query cost", "adaptation cost",
                      "index entries"});
  table.AddRow({"Adaptive Index Buffer",
                FormatDouble(aib->query_cost, 0),
                FormatDouble(aib->adapt_cost, 1),
                std::to_string(aib->index_entries)});
  table.AddRow({"Shinobi-style partitioning",
                FormatDouble(shinobi.query_cost, 0),
                FormatDouble(shinobi.adapt_cost, 1),
                std::to_string(shinobi.index_entries)});
  const double speedup =
      aib->query_cost > 0 ? shinobi.query_cost / aib->query_cost : 0;

  std::cout << "Baseline comparison — Adaptive Index Buffer vs "
               "Shinobi-style partitioning (§VI)\n"
               "(200 queries, columns weighted 3:2:1, identical hot value "
               "sets and adaptation thresholds)\n\n";
  table.Print(std::cout);
  std::cout << "\nReading (the paper's §VI argument, quantified): "
            << FormatDouble(speedup, 1)
            << "x query-cost advantage for the Index Buffer. Shinobi "
               "adapts at value granularity by physically moving tuples — "
               "with selective, dispersed hot values the cold partition "
               "barely shrinks, so most misses still pay a near-full scan "
               "(the control-loop problem again). The Index Buffer "
               "completes *pages* during the scans it must run anyway, so "
               "its scans collapse within a few queries. Shinobi's index "
               "entries are 3x its hot tuples (every column indexes the "
               "same tuple set); its adaptation cost is physical I/O, the "
               "buffer's is in-memory inserts. The buffer pays with "
               "memory (the index-entries column) — the price §IV's "
               "bounded Index Buffer Space exists to control.\n";
  return 0;
}

}  // namespace
}  // namespace aib

int main(int argc, char** argv) {
  return aib::Run(aib::bench::ParseArgs(argc, argv));
}
