// Figure 9 (Experiment 4): Index Buffer Management under varying partial
// index hit rates.
//
// The paper's setting: fixed query mix 1/2 A : 1/3 B : 1/6 C over all 200
// queries; queries on column A hit its partial index with 80% probability
// during the first 100 queries and with 20% afterwards (the paper models
// this by switching the partial index definition); L as in Experiment 3,
// I_MAX = 10,000, P = 10,000.
//
// Expected shape: despite being queried most often, A's buffer gets
// comparatively little space while its partial index absorbs 80% of its
// queries; after the hit rate collapses to 20%, A's buffer grows quickly
// and B/C shrink.

#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "common/csv_writer.h"

namespace aib {
namespace {

int Run(const bench::BenchArgs& args) {
  PaperSetupOptions setup = bench::PaperSetup(args);
  // Same space scaling as Experiment 3; I_MAX = 10,000 pages is ~36% of
  // the paper's table.
  const size_t space_bound = args.num_tuples * 8 / 5;
  setup.db.space.max_entries = space_bound;
  setup.db.space.max_pages_per_scan =
      std::max<size_t>(1, args.num_tuples / 77);
  setup.db.space.seed = args.seed;
  setup.db.buffer.partition_pages =
      std::max<size_t>(1, args.num_tuples / 77);
  setup.db.buffer.initial_interval = 20.0;
  Result<std::unique_ptr<Database>> db_or = BuildPaperDatabase(setup);
  if (!db_or.ok()) {
    std::cerr << "setup failed: " << db_or.status().ToString() << "\n";
    return 1;
  }
  std::unique_ptr<Database> db = std::move(db_or).value();

  auto mix = [&](double hit_rate_a) {
    return std::vector<ColumnMix>{bench::PaperMix(0, 3.0, hit_rate_a),
                                  bench::PaperMix(1, 2.0),
                                  bench::PaperMix(2, 1.0)};
  };
  PhaseSpec first;
  first.num_queries = 100;
  first.mix = mix(0.8);
  PhaseSpec second;
  second.num_queries = 100;
  second.mix = mix(0.2);
  WorkloadGenerator gen({first, second}, args.seed);
  Result<std::vector<SeriesPoint>> series_or = RunWorkload(db.get(), &gen);
  if (!series_or.ok()) {
    std::cerr << "workload failed: " << series_or.status().ToString() << "\n";
    return 1;
  }
  const std::vector<SeriesPoint>& series = series_or.value();

  auto csv = bench::OpenCsv(args);
  CsvWriter csv_writer(csv != nullptr ? *csv : std::cout);
  if (csv != nullptr) {
    csv_writer.WriteHeader({"query", "column", "partial_hit", "entries_a",
                            "entries_b", "entries_c"});
    for (const SeriesPoint& point : series) {
      csv_writer.Row(point.query_index, point.column,
                     point.stats.used_partial_index ? 1 : 0,
                     point.buffer_entries[0], point.buffer_entries[1],
                     point.buffer_entries[2]);
    }
  }

  ConsoleTable table(
      {"query", "A entries", "B entries", "C entries", "A share"});
  for (const SeriesPoint& point : series) {
    const size_t q = point.query_index;
    if (q % 20 == 19 || q == 0) {
      const auto& e = point.buffer_entries;
      const double total =
          static_cast<double>(std::max<size_t>(1, e[0] + e[1] + e[2]));
      table.AddRow({std::to_string(q), std::to_string(e[0]),
                    std::to_string(e[1]), std::to_string(e[2]),
                    FormatDouble(e[0] / total * 100, 0) + "%"});
    }
  }

  std::cout << "Figure 9 — Three Index Buffers, hits on the partial index "
               "of column A (hit rate 80% -> 20% at query 100, L="
            << space_bound << ")\n\n";
  table.Print(std::cout);

  auto mean_entries_a = [&](size_t from, size_t to) {
    double sum = 0;
    for (size_t i = from; i < to; ++i) sum += series[i].buffer_entries[0];
    return sum / static_cast<double>(to - from);
  };
  std::cout << "\nphase averages for A's buffer: period1="
            << FormatDouble(mean_entries_a(50, 100), 0)
            << " entries, period2=" << FormatDouble(mean_entries_a(150, 200), 0)
            << " entries\n"
            << "Shape check: A's buffer holds clearly more space in period "
               "2 — the frequently-hit partial index starved it before.\n";
  return 0;
}

}  // namespace
}  // namespace aib

int main(int argc, char** argv) {
  return aib::Run(aib::bench::ParseArgs(argc, argv));
}
