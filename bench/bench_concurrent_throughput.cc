// Concurrent query throughput: queries/second and total pages read as the
// QueryService worker count grows (1, 2, 4, 8), with and without the
// shared-scan manager.
//
// The workload is the worst case for an unshared engine: point queries on
// an *unindexed* column, each of which is a full table scan, against a
// buffer pool far smaller than the table (so every scan pays a pass of
// page reads). Without sharing, Q queries cost ~Q passes of reads; with
// the shared-scan manager, overlapping scans attach to one circular cursor
// and the whole batch costs close to a single pass — the cooperative-scan
// effect the service exists for.
//
// Columns: workers, shared (0/1), queries, wall_ms, qps, pages_read, and
// read_passes = pages_read / table pages (the figure of merit: ~Q without
// sharing, ~1-2 with it).

#include <chrono>
#include <future>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/csv_writer.h"
#include "common/rng.h"
#include "service/query_service.h"

namespace aib {
namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct RunResult {
  size_t workers = 0;
  bool shared = false;
  size_t queries = 0;
  double wall_ms = 0;
  double qps = 0;
  int64_t pages_read = 0;
  double read_passes = 0;
};

RunResult RunBatch(Database* db, const std::vector<Query>& queries,
                   size_t workers, bool shared) {
  const int64_t reads_before = db->metrics().Get(kMetricPagesRead);

  QueryServiceOptions options;
  options.num_workers = workers;
  options.queue_capacity = queries.size();
  options.shared_scans = shared;
  QueryService service(db->executor(), &db->table(), options, &db->metrics());

  const int64_t start = NowNs();
  std::vector<std::future<Result<QueryResult>>> futures;
  futures.reserve(queries.size());
  for (const Query& query : queries) {
    for (;;) {
      Result<std::future<Result<QueryResult>>> submitted =
          service.Submit(query);
      if (submitted.ok()) {
        futures.push_back(std::move(submitted).value());
        break;
      }
      std::this_thread::yield();  // Busy: queue full, retry
    }
  }
  for (auto& future : futures) {
    Result<QueryResult> result = future.get();
    if (!result.ok()) {
      std::cerr << "query failed: " << result.status().ToString() << "\n";
      std::exit(1);
    }
  }
  const double wall_ms =
      static_cast<double>(NowNs() - start) / 1e6;

  RunResult out;
  out.workers = workers;
  out.shared = shared;
  out.queries = queries.size();
  out.wall_ms = wall_ms;
  out.qps = static_cast<double>(queries.size()) / (wall_ms / 1e3);
  out.pages_read = db->metrics().Get(kMetricPagesRead) - reads_before;
  out.read_passes = static_cast<double>(out.pages_read) /
                    static_cast<double>(db->table().PageCount());
  return out;
}

int Run(const bench::BenchArgs& args) {
  // Unindexed table: every query is a full scan. Small pool: every scan
  // is a pass of disk reads, not cache hits.
  PaperSetupOptions setup = bench::PaperSetup(args);
  setup.create_indexes = false;
  setup.db.max_tuples_per_page = 50;
  setup.db.buffer_pool_pages = 64;
  Result<std::unique_ptr<Database>> db_or = BuildPaperDatabase(setup);
  if (!db_or.ok()) {
    std::cerr << "setup failed: " << db_or.status().ToString() << "\n";
    return 1;
  }
  std::unique_ptr<Database> db = std::move(db_or).value();
  const size_t pages = db->table().PageCount();

  // One fixed batch of point queries, reused for every configuration so
  // the comparisons are apples-to-apples.
  constexpr size_t kQueries = 48;
  Rng rng(args.seed);
  std::vector<Query> queries;
  queries.reserve(kQueries);
  for (size_t i = 0; i < kQueries; ++i) {
    queries.push_back(
        Query::Point(0, static_cast<Value>(rng.UniformInt(1, 50000))));
  }

  std::vector<RunResult> results;
  for (const size_t workers : {1, 2, 4, 8}) {
    for (const bool shared : {false, true}) {
      results.push_back(RunBatch(db.get(), queries, workers, shared));
    }
  }

  auto csv = bench::OpenCsv(args);
  if (csv != nullptr) {
    CsvWriter csv_writer(*csv);
    csv_writer.WriteHeader({"workers", "shared", "queries", "wall_ms", "qps",
                            "pages_read", "read_passes"});
    for (const RunResult& r : results) {
      csv_writer.Row(r.workers, r.shared ? 1 : 0, r.queries,
                     FormatDouble(r.wall_ms, 2), FormatDouble(r.qps, 1),
                     r.pages_read, FormatDouble(r.read_passes, 2));
    }
  }

  std::cout << "Concurrent throughput — " << kQueries
            << " full-scan point queries on an unindexed column, "
            << pages << "-page table, 64-page buffer pool\n\n";
  ConsoleTable table({"workers", "shared", "wall_ms", "qps", "pages_read",
                      "read_passes"});
  for (const RunResult& r : results) {
    table.AddRow({std::to_string(r.workers), r.shared ? "yes" : "no",
                  FormatDouble(r.wall_ms, 2), FormatDouble(r.qps, 1),
                  std::to_string(r.pages_read),
                  FormatDouble(r.read_passes, 2)});
  }
  table.Print(std::cout);
  std::cout << "\nread_passes = pages_read / table pages; ~" << kQueries
            << " without sharing, a small constant with it.\n";
  return 0;
}

}  // namespace
}  // namespace aib

int main(int argc, char** argv) {
  return aib::Run(aib::bench::ParseArgs(argc, argv));
}
