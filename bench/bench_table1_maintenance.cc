// Table I: Index Buffer maintenance operations.
//
// The paper's Table I defines which (partial index, Index Buffer, counter)
// operations each DML case triggers. This micro-benchmark measures the
// per-operation cost of every cell of the matrix plus the insert/delete
// degenerations, demonstrating that maintenance is cheap, in-memory work
// (the premise that lets the Index Buffer shadow DML without the I/O cost
// of adapting the disk-based partial index).

#include <benchmark/benchmark.h>

#include <memory>

#include "core/maintenance.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace aib {
namespace {

/// Shared fixture state: coverage [0, 99]; page 0 buffered, page 1 not.
struct MaintenanceBench {
  MaintenanceBench()
      : disk(4096),
        pool(&disk, 64),
        table("t", Schema::PaperSchema(1, 16), &disk, &pool,
              HeapFileOptions{.max_tuples_per_page = 4}) {
    for (Value v : {0, 1, 200, 201, 2, 3, 202, 203}) {
      rids.push_back(table.Insert(Tuple({v}, {"p"})).value());
    }
    index = std::make_unique<PartialIndex>(&table, 0,
                                           ValueCoverage::Range(0, 99));
    (void)index->Build();
    buffer = std::make_unique<IndexBuffer>(
        index.get(), IndexBufferOptions{.partition_pages = 1});
    (void)buffer->InitCounters();
    buffer->AddTuple(0, 200, rids[2]);
    buffer->MarkPageIndexed(0);
  }

  DiskManager disk;
  BufferPool pool;
  Table table;
  std::vector<Rid> rids;
  std::unique_ptr<PartialIndex> index;
  std::unique_ptr<IndexBuffer> buffer;
};

/// One update cell of Table I, parameterized by
/// (old∈IX, new∈IX, p_old∈B, p_new∈B) packed into the benchmark args.
void BM_TableI_UpdateCell(benchmark::State& state) {
  MaintenanceBench bench;
  const bool old_in_ix = state.range(0) != 0;
  const bool new_in_ix = state.range(1) != 0;
  const size_t old_page = state.range(2) != 0 ? 0 : 1;
  const size_t new_page = state.range(3) != 0 ? 0 : 1;
  const Value old_value = old_in_ix ? 10 : 300;
  const Value new_value = new_in_ix ? 11 : 301;

  int64_t i = 0;
  for (auto _ : state) {
    // Alternate forward/backward so state stays balanced across
    // iterations.
    const bool forward = (i++ % 2) == 0;
    const TupleChange change =
        forward ? TupleChange::MakeUpdate(old_value,
                                          Rid{(PageId)old_page, 20}, old_page,
                                          new_value, Rid{(PageId)new_page, 21},
                                          new_page)
                : TupleChange::MakeUpdate(new_value,
                                          Rid{(PageId)new_page, 21}, new_page,
                                          old_value, Rid{(PageId)old_page, 20},
                                          old_page);
    // Seed the "old" side so the change is always applicable.
    if (forward) {
      if (old_in_ix) {
        bench.index->Add(old_value, Rid{(PageId)old_page, 20});
      } else if (bench.buffer->PageInBuffer(old_page)) {
        bench.buffer->AddTuple(old_page, old_value, Rid{(PageId)old_page, 20});
      } else {
        bench.buffer->counters().Increment(old_page);
      }
    }
    benchmark::DoNotOptimize(
        ApplyMaintenance(bench.index.get(), bench.buffer.get(), change));
    if (!forward) {
      // Tear down the re-seeded old side to avoid unbounded growth.
      if (old_in_ix) {
        bench.index->Remove(old_value, Rid{(PageId)old_page, 20});
      } else if (bench.buffer->PageInBuffer(old_page)) {
        bench.buffer->RemoveTuple(old_page, old_value,
                                  Rid{(PageId)old_page, 20});
      } else {
        bench.buffer->counters().Decrement(old_page);
      }
    }
  }
}
BENCHMARK(BM_TableI_UpdateCell)
    ->ArgNames({"oldIX", "newIX", "oldB", "newB"})
    ->ArgsProduct({{0, 1}, {0, 1}, {0, 1}, {0, 1}});

void BM_TableI_InsertCovered(benchmark::State& state) {
  MaintenanceBench bench;
  SlotId slot = 100;
  for (auto _ : state) {
    const Rid rid{1, slot++};
    benchmark::DoNotOptimize(ApplyMaintenance(
        bench.index.get(), bench.buffer.get(),
        TupleChange::MakeInsert(50, rid, 1)));
  }
}
BENCHMARK(BM_TableI_InsertCovered);

void BM_TableI_InsertUncoveredBufferedPage(benchmark::State& state) {
  MaintenanceBench bench;
  SlotId slot = 100;
  for (auto _ : state) {
    const Rid rid{0, slot++};
    benchmark::DoNotOptimize(ApplyMaintenance(
        bench.index.get(), bench.buffer.get(),
        TupleChange::MakeInsert(300, rid, 0)));
  }
}
BENCHMARK(BM_TableI_InsertUncoveredBufferedPage);

void BM_TableI_InsertUncoveredPlainPage(benchmark::State& state) {
  MaintenanceBench bench;
  SlotId slot = 100;
  for (auto _ : state) {
    const Rid rid{1, slot++};
    benchmark::DoNotOptimize(ApplyMaintenance(
        bench.index.get(), bench.buffer.get(),
        TupleChange::MakeInsert(300, rid, 1)));
  }
}
BENCHMARK(BM_TableI_InsertUncoveredPlainPage);

void BM_TableI_DeleteInsertRoundTrip(benchmark::State& state) {
  MaintenanceBench bench;
  for (auto _ : state) {
    const Rid rid{1, 99};
    benchmark::DoNotOptimize(ApplyMaintenance(
        bench.index.get(), bench.buffer.get(),
        TupleChange::MakeInsert(300, rid, 1)));
    benchmark::DoNotOptimize(ApplyMaintenance(
        bench.index.get(), bench.buffer.get(),
        TupleChange::MakeDelete(300, rid, 1)));
  }
}
BENCHMARK(BM_TableI_DeleteInsertRoundTrip);

/// Reference point: an adaptation step of the disk-based partial index
/// (AddValue + RemoveValue round trip) — the expensive operation the
/// Index Buffer's cheap maintenance is designed to avoid.
void BM_PartialIndexAdaptationRoundTrip(benchmark::State& state) {
  MaintenanceBench bench;
  std::vector<Rid> rids = {Rid{1, 4}, Rid{1, 5}, Rid{1, 6}, Rid{1, 7}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench.index->AddValue(300, rids));
    benchmark::DoNotOptimize(bench.index->RemoveValue(300));
  }
}
BENCHMARK(BM_PartialIndexAdaptationRoundTrip);

}  // namespace
}  // namespace aib

BENCHMARK_MAIN();
