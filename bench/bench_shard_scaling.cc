// Throughput-scaling gate for the sharded scatter-gather service layer.
//
// One closed-loop multi-tenant traffic pattern replayed against fleets of
// 1, 2, 4 and 8 hash shards: 8 tenant client threads, each submitting
// Zipf-skewed point queries on the routing column (plus ~10% routed
// inserts) through a TenantScheduler, with 1 executor worker per shard —
// so the only thing that grows with the fleet is shard-side parallelism
// and the per-shard data share. Every config is freshly provisioned with
// the same seeded rows and every client replays the same per-tenant
// seeded stream, so configs differ only in shard count.
//
// Reported per config: aggregate QPS, mean and p99 client-observed
// latency, and the fleet routing counters. Gates with --check:
//
//   qps(2 shards) > 1.05 x qps(1 shard)
//   qps(4 shards) > 1.05 x qps(2 shards)
//
// The gate is robust on small CI machines: a routed point query scans
// only its home shard (rows/N pages), so the per-query work — not just
// the parallelism — shrinks with the fleet. 8 shards is reported but not
// gated (runners may have fewer cores than shards).
//
// --json=PATH emits the numbers for CI artifacts (BENCH_shard_scaling.json).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/csv_writer.h"
#include "common/rng.h"
#include "shard/sharded_database.h"
#include "shard/tenant_scheduler.h"
#include "workload/zipf.h"

namespace aib {
namespace {

constexpr size_t kTenants = 8;
constexpr size_t kOpsPerClient = 150;
constexpr double kInsertFraction = 0.1;
constexpr Value kDomainLo = 1;
constexpr Value kDomainHi = 5000;
constexpr double kKeyZipfTheta = 0.8;

struct ConfigResult {
  size_t shards = 0;
  double qps = 0;
  double mean_ms = 0;
  double p99_ms = 0;
  int64_t legs_dispatched = 0;
  int64_t statements_routed = 0;
  size_t failures = 0;
};

ConfigResult RunConfig(const bench::BenchArgs& args, size_t num_shards) {
  const size_t rows = std::max<size_t>(args.num_tuples / 5, 1000);

  ShardedDatabaseOptions options;
  options.router.num_shards = num_shards;
  options.router.policy = ShardingPolicy::kHash;
  options.router.routing_column = 0;
  options.shard.db.max_tuples_per_page = 32;
  // One executor worker per shard: fleet-side parallelism comes only from
  // the shard count, which is the variable under test.
  options.shard.service.num_workers = 1;
  ShardedDatabase db(Schema::PaperSchema(2, 16), options);

  Rng load_rng(args.seed);
  for (size_t i = 0; i < rows; ++i) {
    const Value a = static_cast<Value>(load_rng.UniformInt(kDomainLo, kDomainHi));
    const Value b = static_cast<Value>(load_rng.UniformInt(kDomainLo, kDomainHi));
    Result<GlobalRid> rid = db.LoadTuple(Tuple({a, b}, {"row"}));
    if (!rid.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   rid.status().ToString().c_str());
      std::exit(2);
    }
  }

  TenantSchedulerOptions scheduler_options;
  // Dispatch capacity is constant across configs; only the shard-side
  // worker pool grows with the fleet.
  scheduler_options.num_workers = kTenants;
  for (uint64_t t = 0; t < kTenants; ++t) {
    TenantOptions tenant;
    tenant.weight = t == 0 ? 4 : 1;  // one "premium" tenant, like prod
    tenant.queue_capacity = 2 * kOpsPerClient;
    scheduler_options.tenants[t] = tenant;
  }
  TenantScheduler scheduler(&db, scheduler_options);

  const ZipfGenerator zipf(static_cast<size_t>(kDomainHi - kDomainLo + 1),
                           kKeyZipfTheta);
  std::vector<std::vector<double>> latencies(kTenants);
  std::vector<size_t> failures(kTenants, 0);

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(kTenants);
  for (uint64_t t = 0; t < kTenants; ++t) {
    clients.emplace_back([&, t] {
      // Per-tenant seeded stream: identical across shard configs.
      Rng rng(args.seed * 1000 + t + 1);
      latencies[t].reserve(kOpsPerClient);
      for (size_t i = 0; i < kOpsPerClient; ++i) {
        ShardStatement statement = ShardStatement::Select(Query::Point(0, 0));
        if (rng.UniformDouble() < kInsertFraction) {
          const Value a =
              static_cast<Value>(rng.UniformInt(kDomainLo, kDomainHi));
          const Value b =
              static_cast<Value>(rng.UniformInt(kDomainLo, kDomainHi));
          statement = ShardStatement::Insert(Tuple({a, b}, {"row"}));
        } else {
          // Zipf rank 1 = hottest key; routed point query on column 0.
          const Value key = kDomainLo + static_cast<Value>(zipf.Sample(rng)) - 1;
          statement = ShardStatement::Select(Query::Point(0, key));
        }
        ShardSubmitOptions submit;
        submit.tenant = t;
        const auto start = std::chrono::steady_clock::now();
        auto future = scheduler.Submit(t, statement, submit);
        if (!future.ok()) {
          ++failures[t];
          continue;
        }
        Result<ShardResult> result = future->get();
        const auto end = std::chrono::steady_clock::now();
        if (!result.ok()) {
          ++failures[t];
          continue;
        }
        latencies[t].push_back(
            std::chrono::duration<double, std::milli>(end - start).count());
      }
    });
  }
  for (std::thread& client : clients) client.join();
  const auto wall_end = std::chrono::steady_clock::now();
  scheduler.Shutdown();

  ConfigResult config;
  config.shards = num_shards;
  std::vector<double> all;
  for (size_t t = 0; t < kTenants; ++t) {
    all.insert(all.end(), latencies[t].begin(), latencies[t].end());
    config.failures += failures[t];
  }
  std::sort(all.begin(), all.end());
  const double wall_s =
      std::chrono::duration<double>(wall_end - wall_start).count();
  config.qps = static_cast<double>(all.size()) / std::max(wall_s, 1e-9);
  double sum = 0;
  for (const double ms : all) sum += ms;
  config.mean_ms = all.empty() ? 0 : sum / static_cast<double>(all.size());
  config.p99_ms =
      all.empty() ? 0 : all[(all.size() * 99) / 100 == all.size()
                             ? all.size() - 1
                             : (all.size() * 99) / 100];
  const std::map<std::string, int64_t> counters = db.FleetCounters();
  auto counter = [&](const char* name) {
    auto it = counters.find(name);
    return it == counters.end() ? int64_t{0} : it->second;
  };
  config.legs_dispatched = counter(kMetricShardLegsDispatched);
  config.statements_routed = counter(kMetricShardStatementsRouted);
  return config;
}

int Run(const bench::BenchArgs& args) {
  const size_t rows = std::max<size_t>(args.num_tuples / 5, 1000);
  std::cout << "Shard-scaling bench — " << rows << " rows, " << kTenants
            << " tenant clients x " << kOpsPerClient
            << " ops, Zipf theta=" << kKeyZipfTheta << ", seed=" << args.seed
            << "\n\n";

  const size_t shard_counts[] = {1, 2, 4, 8};
  std::vector<ConfigResult> configs;
  for (const size_t n : shard_counts) {
    configs.push_back(RunConfig(args, n));
    const ConfigResult& c = configs.back();
    std::printf(
        "%zu shard%s  qps %8.0f  mean %7.3f ms  p99 %7.3f ms  "
        "routed %lld  legs %lld  failures %zu\n",
        c.shards, c.shards == 1 ? " " : "s", c.qps, c.mean_ms, c.p99_ms,
        static_cast<long long>(c.statements_routed),
        static_cast<long long>(c.legs_dispatched), c.failures);
  }

  bool clean = true;
  for (const ConfigResult& c : configs) {
    if (c.failures != 0) {
      std::cout << c.shards << " shards: " << c.failures
                << " client ops failed\n";
      clean = false;
    }
  }

  const bool scale_2 = configs[1].qps > configs[0].qps * 1.05;
  const bool scale_4 = configs[2].qps > configs[1].qps * 1.05;
  std::cout << "\nscaling gate: qps(2)/qps(1) "
            << FormatDouble(configs[1].qps / std::max(configs[0].qps, 1e-9), 2)
            << " > 1.05: " << (scale_2 ? "OK" : "FAIL") << "\n"
            << "scaling gate: qps(4)/qps(2) "
            << FormatDouble(configs[2].qps / std::max(configs[1].qps, 1e-9), 2)
            << " > 1.05: " << (scale_4 ? "OK" : "FAIL") << "\n";

  if (args.json_path.has_value()) {
    std::ostringstream json;
    json << "{\n"
         << "  \"bench\": \"shard_scaling\",\n"
         << "  \"scale\": \"" << args.scale << "\",\n"
         << "  \"rows\": " << rows << ",\n"
         << "  \"tenants\": " << kTenants << ",\n"
         << "  \"ops_per_client\": " << kOpsPerClient << ",\n"
         << "  \"configs\": [\n";
    for (size_t i = 0; i < configs.size(); ++i) {
      const ConfigResult& c = configs[i];
      json << "    {\"shards\": " << c.shards << ", \"qps\": "
           << FormatDouble(c.qps, 1)
           << ", \"mean_ms\": " << FormatDouble(c.mean_ms, 3)
           << ", \"p99_ms\": " << FormatDouble(c.p99_ms, 3)
           << ", \"statements_routed\": " << c.statements_routed
           << ", \"legs_dispatched\": " << c.legs_dispatched
           << ", \"failures\": " << c.failures << "}"
           << (i + 1 < configs.size() ? "," : "") << "\n";
    }
    json << "  ],\n"
         << "  \"scaling_2_ok\": " << (scale_2 ? "true" : "false") << ",\n"
         << "  \"scaling_4_ok\": " << (scale_4 ? "true" : "false") << ",\n"
         << "  \"clean\": " << (clean ? "true" : "false") << "\n}\n";
    std::ofstream out(*args.json_path);
    if (!out.is_open()) {
      std::fprintf(stderr, "cannot open %s\n", args.json_path->c_str());
      return 1;
    }
    out << json.str();
  }

  if (!args.check) return clean ? 0 : 1;
  return (clean && scale_2 && scale_4) ? 0 : 1;
}

}  // namespace
}  // namespace aib

int main(int argc, char** argv) {
  return aib::Run(aib::bench::ParseArgs(argc, argv));
}
